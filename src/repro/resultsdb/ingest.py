"""Ingest layer: write-through event sink plus offline backfill.

Three paths feed the store, all converging on the same rows:

* :class:`DatabaseSink` — consumes the live telemetry stream (see
  :mod:`repro.campaign.events`) from the sequential runner, the parallel
  runner or the distributed coordinator.  Inserts are batched into one
  transaction per ``batch`` experiments and keyed by the experiment's
  global index, so checkpoint resume and requeued distributed tasks
  re-delivering the same experiment are silently deduplicated
  (``INSERT OR IGNORE``): every experiment is a pure function of its
  global index, so the ignored duplicate is provably identical.
* :func:`ingest_events` — replays a JSONL event log through the same
  sink, so an offline backfill is bit-identical to having run live.
* :func:`ingest_result` / :func:`ingest_results_file` — import persisted
  :class:`CampaignResult` JSON: both the full ``save_matrix`` format
  (records included when kept) and the summary format of
  ``results/full_campaign*.json`` (counts only).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.campaign.classify import Outcome
from repro.campaign.events import read_events
# The tag-encoding of fault values must match the JSON persistence layer
# bit-for-bit (floats travel as float.hex()), so the one implementation in
# repro.campaign.io is deliberately shared rather than duplicated.
from repro.campaign.io import (
    _value_from_dict,
    _value_to_dict,
    result_from_dict,
)
from repro.campaign.results import CampaignResult
from repro.errors import CampaignError, ResultsDBError
from repro.resultsdb.db import ResultsDB

#: Experiments buffered per transaction.  Large enough that transaction
#: overhead amortizes to nothing (>> 5k rows/s), small enough that a live
#: progress query never lags far behind the campaign.
DEFAULT_BATCH = 512


def seed_to_db(seed: int) -> int:
    """Experiment seeds are uint64 (:func:`repro.utils.derive_seed`);
    SQLite INTEGER is int64.  Store the two's-complement reinterpretation."""
    return seed - (1 << 64) if seed >= (1 << 63) else seed


def seed_from_db(seed: int) -> int:
    """Inverse of :func:`seed_to_db`: back to the uint64 seed."""
    return seed & ((1 << 64) - 1)


def fault_opcode(instr_text: str) -> str:
    """Instruction opcode = first token of the disassembly text."""
    parts = instr_text.split(None, 1)
    return parts[0] if parts else ""


def operand_kind(desc: str) -> str:
    """Operand kind = descriptor prefix (``ireg:3`` -> ``ireg``)."""
    return desc.split(":")[0]


def _encode_value(tagged: object) -> str | None:
    """Store a tag-encoded fault value dict as its JSON text."""
    if tagged is None:
        return None
    return json.dumps(tagged, sort_keys=True)


def decode_value(text: str | None) -> object:
    """Inverse of :func:`_encode_value`: back to the Python value."""
    if text is None:
        return None
    return _value_from_dict(json.loads(text))


def _fault_row(campaign_id: int, index: int, fault: dict) -> tuple:
    # ``bit`` predates non-bit-indexed models and stays NOT NULL: a fault
    # with no single bit position (a cache-line smear) stores -1.
    bit = fault["bit"]
    bits = fault.get("bits")
    return (
        campaign_id, index, fault["tool"], fault["dynamic_index"],
        fault["pc"], fault["func"], fault["block"], fault["instr_text"],
        fault_opcode(fault["instr_text"]), fault["operand_index"],
        fault["operand_desc"], operand_kind(fault["operand_desc"]),
        -1 if bit is None else bit, _encode_value(fault["value_before"]),
        _encode_value(fault["value_after"]),
        fault.get("model", "single-bit"),
        None if bits is None else json.dumps(list(bits)),
        fault.get("address"), fault.get("dwell", 1),
    )


_INSERT_RUN = (
    "INSERT OR IGNORE INTO runs(campaign_id, idx, seed, outcome_id, cycles,"
    " steps, trap, exit_code, engine, snapshot_hit)"
    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
)

_INSERT_FAULT = (
    "INSERT OR IGNORE INTO faults(campaign_id, idx, tool, dynamic_index, pc,"
    " func, block, instr_text, opcode, operand_index, operand_desc,"
    " operand_kind, bit, value_before, value_after, model, bits, address,"
    " dwell)"
    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
)


class DatabaseSink:
    """Event-stream consumer that writes experiments through to a store.

    Feed it every telemetry event (``sink.emit(event, **fields)``); it
    reacts to ``campaign_start``/``cell_start`` (get-or-create the
    campaign row), ``experiment`` (buffer one run + fault row) and
    ``campaign_finish``/``cell_finish`` (flush, record finalized outcome
    tallies and totals).  All other events pass through untouched, so the
    sink can be chained behind any :class:`repro.campaign.events.EventLog`.

    Idempotency contract: replaying the same stream (or any interleaving
    of streams of the same campaign) leaves the store unchanged — rows
    are keyed by ``(campaign, global index)`` and duplicates are ignored.

    Thread-safe: the distributed coordinator emits from its connection
    handler threads, so buffer mutation is guarded by a lock (statement
    execution is additionally serialized inside :class:`ResultsDB`).
    """

    def __init__(
        self,
        db: ResultsDB,
        batch: int = DEFAULT_BATCH,
        source: str | None = None,
    ) -> None:
        if batch < 1:
            raise ResultsDBError("batch must be >= 1")
        self._db = db
        self._batch = batch
        self._source = source
        self._mu = threading.RLock()
        #: (workload, tool) -> campaign row id for streams in flight
        self._campaigns: dict[tuple[str, str], int] = {}
        self._runs: list[tuple] = []
        self._faults: list[tuple] = []
        self.experiments = 0  #: experiment events consumed (pre-dedup)

    # ------------------------------------------------------------- events

    def emit(self, event: str, **fields) -> None:
        with self._mu:
            if event in ("campaign_start", "cell_start"):
                key = (fields["workload"], fields["tool"])
                self._campaigns[key] = self._db.campaign_id(
                    *key, n=fields["n"],
                    base_seed=fields.get("base_seed", -1),
                    source=self._source,
                    fault_model=fields.get("fault_model"),
                )
            elif event == "experiment":
                self._note_experiment(fields)
            elif event in ("campaign_finish", "cell_finish"):
                self._finish(fields)

    def _campaign_for(self, fields: dict) -> int:
        key = (fields["workload"], fields["tool"])
        try:
            return self._campaigns[key]
        except KeyError:
            raise ResultsDBError(
                f"experiment event for {key[0]}/{key[1]} arrived before its "
                "campaign_start/cell_start — is the event stream truncated?"
            ) from None

    def _note_experiment(self, fields: dict) -> None:
        cid = self._campaign_for(fields)
        index = fields["index"]
        snapshot_hit = fields.get("snapshot_hit")
        self._runs.append((
            cid, index, seed_to_db(fields["seed"]),
            self._db.outcome_ids[fields["outcome"]], fields["cycles"],
            fields["steps"], fields["trap"], fields["exit_code"],
            fields.get("engine"),
            None if snapshot_hit is None else int(snapshot_hit),
        ))
        fault = fields.get("fault")
        if fault is not None:
            self._faults.append(_fault_row(cid, index, fault))
        self.experiments += 1
        if len(self._runs) >= self._batch:
            self.flush()

    def _finish(self, fields: dict) -> None:
        self.flush()
        cid = self._campaign_for(fields)
        _write_tallies(self._db, cid, fields.get("counts", {}))
        self._db.execute(
            "UPDATE campaigns SET total_cycles=?, total_steps=? WHERE id=?",
            (fields.get("total_cycles"), fields.get("total_steps"), cid),
        )
        # Newer streams make the log self-contained; logs predating these
        # fields leave the metadata NULL (a result import can fill it).
        if fields.get("total_candidates") is not None:
            self._db.execute(
                "UPDATE campaigns SET total_candidates=? WHERE id=?",
                (fields["total_candidates"], cid),
            )
        if fields.get("golden_output") is not None:
            self._db.execute(
                "UPDATE campaigns SET golden_output=? WHERE id=?",
                (json.dumps(fields["golden_output"]), cid),
            )
        if fields.get("schedule") is not None:
            self._db.execute(
                "UPDATE campaigns SET schedule=? WHERE id=?",
                (fields["schedule"], cid),
            )
        if fields.get("phases") is not None:
            self._db.execute(
                "UPDATE campaigns SET phases=? WHERE id=?",
                (json.dumps(fields["phases"], sort_keys=True), cid),
            )
        if fields.get("fault_model") is not None:
            self._db.execute(
                "UPDATE campaigns SET fault_model=? WHERE id=?",
                (fields["fault_model"], cid),
            )
        self._db.commit()

    # ----------------------------------------------------------- plumbing

    def flush(self) -> None:
        """Write buffered rows in one transaction."""
        with self._mu:
            if not self._runs and not self._faults:
                return
            with self._db.transaction() as conn:
                conn.executemany(_INSERT_RUN, self._runs)
                conn.executemany(_INSERT_FAULT, self._faults)
            self._runs.clear()
            self._faults.clear()

    def close(self) -> None:
        """Flush and commit (the database itself stays open)."""
        self.flush()
        self._db.commit()


def _write_tallies(db: ResultsDB, campaign_id: int, counts: dict) -> None:
    """Record finalized outcome counts (name -> int) for a campaign."""
    db.executemany(
        "INSERT OR REPLACE INTO tallies(campaign_id, outcome_id, count)"
        " VALUES (?, ?, ?)",
        [
            (campaign_id, db.outcome_ids[name], int(k))
            for name, k in counts.items()
        ],
    )


# ---------------------------------------------------------------- backfill


def ingest_events(db: ResultsDB, path: str | Path) -> dict:
    """Replay a JSONL event log into the store.

    Returns ``{"experiments": <events consumed>, "campaigns": <touched>}``.
    Replaying the same log twice is a no-op for the second pass.
    """
    sink = DatabaseSink(db, source=str(path))
    try:
        events = read_events(path)
    except (OSError, ValueError) as exc:
        raise ResultsDBError(f"cannot read event log {path}: {exc}") from exc
    for record in events:
        fields = dict(record)
        fields.pop("seq", None)
        fields.pop("ts", None)
        event = fields.pop("event", None)
        if event is None:
            raise ResultsDBError(f"event log {path} has a line without 'event'")
        sink.emit(event, **fields)
    sink.close()
    return {
        "experiments": sink.experiments,
        "campaigns": len(sink._campaigns),
    }


def ingest_result(
    db: ResultsDB,
    result: CampaignResult,
    base_seed: int = -1,
    source: str | None = None,
) -> int:
    """Import one :class:`CampaignResult` (records included when kept).

    Fills campaign metadata the event stream does not carry
    (``golden_output``, ``total_candidates``) and records the result's
    outcome counts as the campaign's finalized tallies.  Returns the
    campaign row id.  Idempotent: re-importing the same result converges
    on the same rows.
    """
    cid = db.campaign_id(
        result.workload, result.tool, n=result.n, base_seed=base_seed,
        source=source, fault_model=result.fault_model,
    )
    db.execute(
        "UPDATE campaigns SET total_candidates=?, golden_output=?,"
        " total_cycles=?, total_steps=? WHERE id=?",
        (
            result.total_candidates, json.dumps(list(result.golden_output)),
            result.total_cycles, result.total_steps, cid,
        ),
    )
    _write_tallies(
        db, cid, {o.value: k for o, k in result.counts.items()}
    )
    runs, faults = [], []
    for rec in result.records:
        runs.append((
            cid, rec.index, seed_to_db(rec.seed),
            db.outcome_ids[rec.outcome.value],
            rec.cycles, rec.steps, rec.trap, rec.exit_code, rec.engine,
            None if rec.snapshot_hit is None else int(rec.snapshot_hit),
        ))
        if rec.fault is not None:
            f = rec.fault
            faults.append((
                cid, rec.index, f.tool, f.dynamic_index, f.pc, f.func,
                f.block, f.instr_text, fault_opcode(f.instr_text),
                f.operand_index, f.operand_desc, operand_kind(f.operand_desc),
                -1 if f.bit is None else f.bit,
                _encode_value(_value_to_dict(f.value_before)),
                _encode_value(_value_to_dict(f.value_after)),
                f.model,
                None if f.bits is None else json.dumps(list(f.bits)),
                f.address, f.dwell,
            ))
    with db.transaction() as conn:
        conn.executemany(_INSERT_RUN, runs)
        conn.executemany(_INSERT_FAULT, faults)
    db.commit()
    return cid


def ingest_results_file(db: ResultsDB, path: str | Path) -> dict:
    """Import persisted campaign results, auto-detecting the format.

    * ``save_matrix`` files (``{"version": .., "cells": [..]}``) import
      every cell with records when present.
    * Summary files (``{"n": .., "results": {"workload/tool": {..}}}``,
      the ``results/full_campaign*.json`` shape) import counts and totals
      only — no per-experiment rows.

    Returns ``{"campaigns": <count>, "experiments": <record rows seen>}``.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ResultsDBError(f"cannot load results {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ResultsDBError(f"{path}: expected a JSON object at top level")
    source = str(path)

    if "cells" in payload:
        campaigns = experiments = 0
        for cell in payload["cells"]:
            try:
                result = result_from_dict(cell)
            except (CampaignError, KeyError, TypeError, ValueError) as exc:
                raise ResultsDBError(f"{path}: malformed cell: {exc}") from exc
            ingest_result(db, result, source=source)
            campaigns += 1
            experiments += len(result.records)
        return {"campaigns": campaigns, "experiments": experiments}

    if "results" in payload:
        n = payload.get("n")
        if not isinstance(n, int):
            raise ResultsDBError(f"{path}: summary file missing integer 'n'")
        campaigns = 0
        for key, cell in payload["results"].items():
            workload, _, tool = key.partition("/")
            if not tool:
                raise ResultsDBError(
                    f"{path}: result key {key!r} is not 'workload/tool'"
                )
            cid = db.campaign_id(workload, tool, n=n, source=source)
            db.execute(
                "UPDATE campaigns SET total_candidates=?, total_cycles=?"
                " WHERE id=?",
                (cell.get("total_candidates"), cell.get("total_cycles"), cid),
            )
            _write_tallies(
                db, cid,
                {o.value: cell.get(o.value, 0) for o in Outcome},
            )
            campaigns += 1
        db.commit()
        return {"campaigns": campaigns, "experiments": 0}

    raise ResultsDBError(
        f"{path}: unrecognized results format (neither 'cells' nor 'results')"
    )
