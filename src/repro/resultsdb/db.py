"""SQLite connection wrapper for the campaign results store.

Stdlib :mod:`sqlite3` only — the store must work wherever the campaign
runner does (cluster nodes, CI, laptops) with zero extra dependencies.
WAL journaling lets a live campaign write through its sink while report
builders and ad-hoc queries read concurrently.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from repro.campaign.classify import Outcome
from repro.errors import ResultsDBError
from repro.resultsdb.schema import ADDITIVE_COLUMNS, SCHEMA, SCHEMA_VERSION


class ResultsDB:
    """One open results database.

    Use as a context manager (closes on exit) or call :meth:`close`.
    ``path`` may be ``":memory:"`` for tests.  Opening creates or migrates
    the schema; opening a file created by an incompatible future version
    raises :class:`ResultsDBError` instead of corrupting it.

    Thread-safe: every statement runs under an internal re-entrant lock,
    so a write-through sink fed from coordinator handler threads (the
    distributed path) shares one connection with the main thread safely.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        if self.path != ":memory:":
            parent = Path(self.path).parent
            if parent and not parent.exists():
                parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise ResultsDBError(f"cannot open {self.path}: {exc}") from exc
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._init_schema()
        #: outcome name -> id, loaded once (the lookup table is tiny and
        #: immutable after init).
        self.outcome_ids: dict[str, int] = {
            name: oid
            for oid, name in self._conn.execute(
                "SELECT id, name FROM outcomes"
            )
        }
        self.outcome_names: dict[int, str] = {
            oid: name for name, oid in self.outcome_ids.items()
        }

    def _init_schema(self) -> None:
        with self._conn:
            self._conn.executescript(SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta(key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row[0]) != SCHEMA_VERSION:
                raise ResultsDBError(
                    f"{self.path} has schema version {row[0]}, this build "
                    f"expects {SCHEMA_VERSION}"
                )
            # Stores created before a column shipped get it added in
            # place — nullable additions don't warrant a version bump.
            for table, columns in ADDITIVE_COLUMNS.items():
                have = {
                    row[1] for row in self._conn.execute(
                        f"PRAGMA table_info({table})"
                    )
                }
                for name, sql_type in columns.items():
                    if name not in have:
                        self._conn.execute(
                            f"ALTER TABLE {table} ADD COLUMN {name} {sql_type}"
                        )
            # Outcome ids follow the enum's canonical definition order, so
            # every database numbers them identically.
            self._conn.executemany(
                "INSERT OR IGNORE INTO outcomes(name) VALUES (?)",
                [(o.value,) for o in Outcome],
            )

    # ------------------------------------------------------------- plumbing

    @property
    def connection(self) -> sqlite3.Connection:
        return self._conn

    def execute(self, sql: str, params=()) -> sqlite3.Cursor:
        with self._lock:
            return self._conn.execute(sql, params)

    def executemany(self, sql: str, rows) -> sqlite3.Cursor:
        with self._lock:
            return self._conn.executemany(sql, rows)

    @contextmanager
    def transaction(self):
        """One atomic batch (lock held across the whole transaction)."""
        with self._lock, self._conn:
            yield self._conn

    def commit(self) -> None:
        with self._lock:
            self._conn.commit()

    def vacuum(self) -> None:
        """Compact the file and fold the WAL back in."""
        with self._lock:
            self._conn.commit()
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            self._conn.execute("VACUUM")

    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()

    def __enter__(self) -> "ResultsDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ campaigns

    def campaign_id(
        self, workload: str, tool: str, *, n: int, base_seed: int = -1,
        source: str | None = None, fault_model: str | None = None,
    ) -> int:
        """Get-or-create the campaign row for one matrix cell.

        The UNIQUE(workload, tool, base_seed, n) constraint makes this
        idempotent: every ingest path (live sink, event-log replay, result
        JSON import) converges on the same row.  ``fault_model`` is an
        attribute of the row, not part of its identity: campaigns that
        differ only by model must use distinct seeds (or sizes); a known
        model fills in a row whose model was previously unknown, but a
        *different* known model is a collision and raises rather than
        silently relabeling someone else's experiments.
        """
        row = self.execute(
            "SELECT id, fault_model FROM campaigns WHERE workload=? AND "
            "tool=? AND base_seed=? AND n=?",
            (workload, tool, base_seed, n),
        ).fetchone()
        if row is not None:
            if fault_model is not None:
                if row[1] is not None and row[1] != fault_model:
                    raise ResultsDBError(
                        f"campaign {workload}/{tool} (seed={base_seed}, "
                        f"n={n}) already holds fault model {row[1]!r}; "
                        f"refusing to ingest {fault_model!r} into it — use "
                        f"a distinct base seed or campaign size per model"
                    )
                self.execute(
                    "UPDATE campaigns SET fault_model=? WHERE id=?",
                    (fault_model, row[0]),
                )
            return row[0]
        cur = self.execute(
            "INSERT INTO campaigns(workload, tool, n, base_seed, source,"
            " fault_model) VALUES (?, ?, ?, ?, ?, ?)",
            (workload, tool, n, base_seed, source, fault_model),
        )
        return cur.lastrowid

    def run_count(self, campaign_id: int | None = None) -> int:
        """Stored experiment rows (one campaign, or the whole store)."""
        if campaign_id is None:
            return self.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
        return self.execute(
            "SELECT COUNT(*) FROM runs WHERE campaign_id=?", (campaign_id,)
        ).fetchone()[0]

    def set_validation(
        self, campaign_id: int, verdict: str, p_value: float | None = None
    ) -> None:
        """Record an auto-validation verdict on a campaign row."""
        self.execute(
            "UPDATE campaigns SET validation=?, validation_p=? WHERE id=?",
            (verdict, p_value, campaign_id),
        )
        self.commit()

    # ------------------------------------------------------------ baselines

    def pin_baseline(
        self, workload: str, tool: str, *, fault_model: str, n: int,
        counts: dict[str, int], base_seed: int = -1,
        source: str | None = None,
    ) -> None:
        """Pin (or replace) the reference outcome distribution a future
        campaign of this (workload, tool, fault model) is validated
        against."""
        self.execute(
            "INSERT OR REPLACE INTO baselines(workload, tool, fault_model,"
            " n, base_seed, counts, source, pinned_at)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                workload, tool, fault_model, n, base_seed,
                json.dumps(counts, sort_keys=True), source, time.time(),
            ),
        )
        self.commit()

    def get_baseline(
        self, workload: str, tool: str, fault_model: str
    ) -> dict | None:
        """The pinned baseline for one cell, or ``None`` if never pinned.

        Returns ``{"n", "base_seed", "counts", "source", "pinned_at"}``
        with ``counts`` decoded to ``{outcome name: int}``.
        """
        row = self.execute(
            "SELECT n, base_seed, counts, source, pinned_at FROM baselines"
            " WHERE workload=? AND tool=? AND fault_model=?",
            (workload, tool, fault_model),
        ).fetchone()
        if row is None:
            return None
        return {
            "n": row[0], "base_seed": row[1],
            "counts": json.loads(row[2]),
            "source": row[3], "pinned_at": row[4],
        }

    def baselines(self) -> list[dict]:
        """Every pinned baseline, for ``refine-db baseline`` listing."""
        return [
            {
                "workload": r[0], "tool": r[1], "fault_model": r[2],
                "n": r[3], "base_seed": r[4], "counts": json.loads(r[5]),
                "source": r[6], "pinned_at": r[7],
            }
            for r in self.execute(
                "SELECT workload, tool, fault_model, n, base_seed, counts,"
                " source, pinned_at FROM baselines"
                " ORDER BY workload, tool, fault_model"
            )
        ]
