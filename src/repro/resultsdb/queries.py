"""Typed query API over the results store.

Two kinds of consumers, two guarantees:

* **Decision support** — native SQL aggregations (outcome breakdowns per
  instruction class, per-register / per-bit vulnerability rankings with
  Wilson intervals, cross-tool contingency tables feeding
  :mod:`repro.stats.chisq`).  Grouping and ordering reproduce
  :mod:`repro.campaign.analysis` exactly: groups form in first-seen
  order (= ascending first global index) and are stable-sorted by crash
  proportion, so a DB-backed breakdown is bit-identical to the
  in-memory one.
* **Round-trip** — :func:`to_campaign_result` / :func:`matrix_from_db`
  reconstruct full :class:`CampaignResult` objects, so every existing
  renderer (``reporting.tables``, ``reporting.figures``,
  ``campaign.analysis``) consumes DB data unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.campaign.analysis import GroupSensitivity
from repro.campaign.classify import Outcome
from repro.campaign.results import CampaignResult, ExperimentRecord
from repro.errors import ResultsDBError
from repro.machine.cpu import FaultRecord
from repro.resultsdb.db import ResultsDB
from repro.resultsdb.ingest import decode_value, seed_from_db
from repro.stats.intervals import Interval, wilson_interval
from repro.stats.tables import ContingencyTable


@dataclass(frozen=True)
class CampaignInfo:
    """One campaign row plus its outcome counts and stored-run tally."""

    id: int
    workload: str
    tool: str
    n: int
    base_seed: int
    counts: dict[Outcome, int]
    runs: int                      #: per-experiment rows actually stored
    total_cycles: float | None
    total_candidates: int | None
    source: str | None
    schedule: str | None = None    #: 'index' / 'trigger' (None = old log)
    #: Per-phase wall seconds from campaign_finish/cell_finish
    #: (translate_s/prefix_s/fork_s/tail_s/classify_s), None when the
    #: campaign predates phase telemetry.
    phases: dict[str, float] | None = None
    #: :mod:`repro.fi.models` spec (None = log predating fault models,
    #: which is the single-bit default by construction)
    fault_model: str | None = None
    #: Auto-validation verdict ('passed'/'failed'/'pinned'/'skipped'),
    #: None = never validated (see :mod:`repro.service.validate`).
    validation: str | None = None
    #: Chi-squared p-value behind the verdict (None when not tested).
    validation_p: float | None = None


def list_campaigns(db: ResultsDB) -> list[CampaignInfo]:
    """Every campaign in the store, in insertion order."""
    rows = db.execute(
        "SELECT id, workload, tool, n, base_seed, total_cycles,"
        " total_candidates, source, schedule, phases, fault_model,"
        " validation, validation_p"
        " FROM campaigns ORDER BY id"
    ).fetchall()
    return [
        CampaignInfo(
            id=cid, workload=w, tool=t, n=n, base_seed=seed,
            counts=outcome_counts(db, cid), runs=db.run_count(cid),
            total_cycles=cycles, total_candidates=cands, source=src,
            schedule=schedule,
            phases=None if phases is None else json.loads(phases),
            fault_model=model,
            validation=validation, validation_p=validation_p,
        )
        for cid, w, t, n, seed, cycles, cands, src, schedule, phases, model,
            validation, validation_p
        in rows
    ]


def find_campaign(
    db: ResultsDB, workload: str, tool: str, base_seed: int | None = None
) -> int:
    """Resolve (workload, tool[, base_seed]) to a campaign id.

    Raises :class:`ResultsDBError` when missing, or when the pair is
    ambiguous (several seeds/sizes) and no ``base_seed`` disambiguates.
    """
    sql = "SELECT id FROM campaigns WHERE workload=? AND tool=?"
    params: list = [workload, tool]
    if base_seed is not None:
        sql += " AND base_seed=?"
        params.append(base_seed)
    rows = db.execute(sql + " ORDER BY id", params).fetchall()
    if not rows:
        raise ResultsDBError(f"no campaign for {workload}/{tool} in {db.path}")
    if len(rows) > 1:
        raise ResultsDBError(
            f"{len(rows)} campaigns match {workload}/{tool}; pass base_seed"
        )
    return rows[0][0]


def outcome_counts(db: ResultsDB, campaign_id: int) -> dict[Outcome, int]:
    """Outcome counts for one campaign.

    Finalized tallies (written by ``campaign_finish``/``cell_finish`` or a
    result import) are authoritative; a live or partially-ingested
    campaign falls back to aggregating its stored runs.
    """
    rows = db.execute(
        "SELECT outcome_id, count FROM tallies WHERE campaign_id=?",
        (campaign_id,),
    ).fetchall()
    if not rows:
        rows = db.execute(
            "SELECT outcome_id, COUNT(*) FROM runs WHERE campaign_id=?"
            " GROUP BY outcome_id",
            (campaign_id,),
        ).fetchall()
    counts = {o: 0 for o in Outcome}
    for oid, k in rows:
        counts[Outcome(db.outcome_names[oid])] = k
    return counts


# ------------------------------------------------------------- round-trip


def _fault_records(db: ResultsDB, campaign_id: int) -> dict[int, FaultRecord]:
    return {
        idx: FaultRecord(
            tool=tool, dynamic_index=dyn, pc=pc, func=func, block=block,
            instr_text=instr, operand_index=op_idx, operand_desc=op_desc,
            bit=None if bit < 0 else bit,  # -1 = not bit-indexed
            value_before=decode_value(before),
            value_after=decode_value(after),
            model="single-bit" if model is None else model,
            bits=None if bits is None else tuple(json.loads(bits)),
            address=address,
            dwell=1 if dwell is None else dwell,
        )
        for idx, tool, dyn, pc, func, block, instr, op_idx, op_desc, bit,
            before, after, model, bits, address, dwell in db.execute(
            "SELECT idx, tool, dynamic_index, pc, func, block, instr_text,"
            " operand_index, operand_desc, bit, value_before, value_after,"
            " model, bits, address, dwell"
            " FROM faults WHERE campaign_id=?",
            (campaign_id,),
        )
    }


def to_campaign_result(db: ResultsDB, campaign_id: int) -> CampaignResult:
    """Reconstruct a full :class:`CampaignResult` from the store.

    Records come back in global-index order — the sequential runner's
    order — so analysis and reporting over the reconstruction match the
    in-memory result bit-for-bit.  ``total_cycles``/``total_steps`` prefer
    the finalized values the campaign itself reported (float accumulation
    order matters); they are re-summed from runs only when never
    finalized.
    """
    row = db.execute(
        "SELECT workload, tool, n, total_cycles, total_steps, golden_output,"
        " total_candidates, fault_model FROM campaigns WHERE id=?",
        (campaign_id,),
    ).fetchone()
    if row is None:
        raise ResultsDBError(f"no campaign with id {campaign_id}")
    (workload, tool, n, total_cycles, total_steps, golden, candidates,
     fault_model) = row

    faults = _fault_records(db, campaign_id)
    records = [
        ExperimentRecord(
            index=idx, seed=seed_from_db(seed),
            outcome=Outcome(db.outcome_names[oid]),
            cycles=cycles, steps=steps, trap=trap, exit_code=exit_code,
            engine=engine,
            snapshot_hit=None if hit is None else bool(hit),
            fault=faults.get(idx),
        )
        for idx, seed, oid, cycles, steps, trap, exit_code, engine, hit
        in db.execute(
            "SELECT idx, seed, outcome_id, cycles, steps, trap, exit_code,"
            " engine, snapshot_hit FROM runs WHERE campaign_id=?"
            " ORDER BY idx",
            (campaign_id,),
        )
    ]
    if total_cycles is None:
        total_cycles = 0.0
        for rec in records:  # idx order = the sequential accumulation order
            total_cycles += rec.cycles
    if total_steps is None:
        total_steps = sum(rec.steps for rec in records)
    result = CampaignResult(
        workload=workload, tool=tool, n=n,
        counts=outcome_counts(db, campaign_id),
        total_cycles=total_cycles, total_steps=total_steps,
        golden_output=() if golden is None else tuple(json.loads(golden)),
        total_candidates=0 if candidates is None else candidates,
        fault_model="single-bit" if fault_model is None else fault_model,
    )
    result.records = records
    return result


def matrix_from_db(
    db: ResultsDB, base_seed: int | None = None
) -> dict[tuple[str, str], CampaignResult]:
    """The whole store as a campaign matrix, ready for every existing
    renderer (``render_table4/5/6``, ``render_figure4/5``,
    ``matrix_to_csv``).  Raises when a (workload, tool) cell is ambiguous
    and ``base_seed`` does not disambiguate."""
    sql = "SELECT id, workload, tool FROM campaigns"
    params: tuple = ()
    if base_seed is not None:
        sql += " WHERE base_seed=?"
        params = (base_seed,)
    matrix: dict[tuple[str, str], CampaignResult] = {}
    for cid, workload, tool in db.execute(sql + " ORDER BY id", params):
        if (workload, tool) in matrix:
            raise ResultsDBError(
                f"store holds several campaigns for {workload}/{tool}; "
                "pass base_seed to select one"
            )
        matrix[(workload, tool)] = to_campaign_result(db, cid)
    return matrix


# --------------------------------------------------------------- analysis

#: Fault-site grouping dimensions understood by :func:`breakdown` and
#: :func:`rank_sites`: name -> SQL expression over the ``faults`` table.
DIMENSIONS = {
    "func": "func",
    "opcode": "opcode",
    "kind": "operand_kind",
    "register": "operand_desc",
    "bit": "bit",
    "trigger": "dynamic_index",
    # Rows ingested before fault models existed are single-bit by
    # construction (there was nothing else to run).
    "model": "COALESCE(model, 'single-bit')",
}


def breakdown(
    db: ResultsDB, campaign_id: int, by: str = "func",
    bit_buckets: int | None = None,
) -> list[GroupSensitivity]:
    """Outcome breakdown of fault sites along one dimension.

    Reproduces :mod:`repro.campaign.analysis` bit-for-bit: ``by="func"``
    matches :func:`~repro.campaign.analysis.by_function`, ``by="kind"``
    matches :func:`~repro.campaign.analysis.by_operand_kind`, and
    ``by="bit"`` with ``bit_buckets`` matches
    :func:`~repro.campaign.analysis.by_bit_range` (groups form in
    first-seen order, then a stable sort by crash proportion — or by key
    for bit ranges).
    """
    if by not in DIMENSIONS:
        raise ResultsDBError(
            f"unknown dimension {by!r}; choose from {sorted(DIMENSIONS)}"
        )
    expr = DIMENSIONS[by]
    if by == "bit" and bit_buckets is not None:
        if not 1 <= bit_buckets <= 64:
            raise ResultsDBError("bit_buckets must be in [1, 64]")
        width = 64 // bit_buckets
        # bit = -1 marks faults with no single bit position (cache-line
        # smears); keep them out of bucket 0 and in their own group.
        expr = f"CASE WHEN bit < 0 THEN -1 ELSE (bit / {width}) * {width} END"
    rows = db.execute(
        f"SELECT {expr} AS grp, r.outcome_id, COUNT(*), MIN(r.idx)"
        " FROM faults f JOIN runs r"
        " ON r.campaign_id = f.campaign_id AND r.idx = f.idx"
        " WHERE f.campaign_id=? GROUP BY grp, r.outcome_id",
        (campaign_id,),
    ).fetchall()

    def label(grp) -> str:
        if by == "bit" and bit_buckets is not None:
            if grp < 0:
                return "bits[n/a]"  # matches analysis.by_bit_range
            width = 64 // bit_buckets
            return f"bits[{grp:02d}-{min(grp + width - 1, 63):02d}]"
        if by == "bit" and grp < 0:
            return "n/a"
        return str(grp)

    first_seen: dict[str, int] = {}
    groups: dict[str, GroupSensitivity] = {}
    for grp, oid, count, min_idx in rows:
        key = label(grp)
        if key not in groups:
            groups[key] = GroupSensitivity(key, {o: 0 for o in Outcome})
            first_seen[key] = min_idx
        groups[key].counts[Outcome(db.outcome_names[oid])] += count
        first_seen[key] = min(first_seen[key], min_idx)
    ordered = sorted(groups.values(), key=lambda g: first_seen[g.key])
    if by == "bit" and bit_buckets is not None:
        # by_bit_range sorts its crash-ordered groups back by key.
        ordered = sorted(
            ordered, key=lambda g: g.proportion(Outcome.CRASH), reverse=True
        )
        return sorted(ordered, key=lambda g: g.key)
    return sorted(
        ordered, key=lambda g: g.proportion(Outcome.CRASH), reverse=True
    )


@dataclass(frozen=True)
class SiteRank:
    """One fault-site group ranked by outcome rate with its Wilson CI."""

    key: str
    total: int
    hits: int                      #: experiments with the ranked outcome
    interval: Interval             #: Wilson CI of hits/total

    @property
    def rate(self) -> float:
        return self.interval.p


def rank_sites(
    db: ResultsDB, campaign_id: int, by: str = "register",
    outcome: Outcome = Outcome.CRASH, confidence: float = 0.95,
    min_total: int = 1, limit: int | None = None,
) -> list[SiteRank]:
    """Vulnerability ranking: which sites most reliably produce ``outcome``.

    Groups fault sites along ``by`` (any :data:`DIMENSIONS` key) and
    orders by the **lower bound** of the Wilson interval — the standard
    guard against crowning a 1-of-1 site over a 90-of-100 one.
    """
    ranked = [
        SiteRank(
            key=g.key, total=g.total, hits=g.frequency(outcome),
            interval=wilson_interval(
                g.frequency(outcome), g.total, confidence
            ),
        )
        for g in breakdown(db, campaign_id, by=by)
        if g.total >= min_total
    ]
    ranked.sort(key=lambda s: (-s.interval.low, -s.rate, s.key))
    return ranked if limit is None else ranked[:limit]


def contingency(
    db: ResultsDB, workload: str, tool_a: str, tool_b: str,
    base_seed: int | None = None,
) -> ContingencyTable:
    """Cross-tool contingency table for one workload, feeding
    :meth:`ContingencyTable.test` (the paper's Table 4/5 instrument)."""

    def _counts_result(tool: str) -> CampaignResult:
        cid = find_campaign(db, workload, tool, base_seed)
        row = db.execute(
            "SELECT n FROM campaigns WHERE id=?", (cid,)
        ).fetchone()
        return CampaignResult(
            workload=workload, tool=tool, n=row[0],
            counts=outcome_counts(db, cid),
        )

    return ContingencyTable.from_results(
        _counts_result(tool_a), _counts_result(tool_b)
    )
