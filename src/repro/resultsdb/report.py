"""Static HTML report over a results store.

Renders the paper's decision-support views — Figure 4 outcome
distributions (stacked bars + Wilson whiskers) and Table 5 chi-squared
cross-tool comparisons — as plain HTML/CSS with no JavaScript and no
external assets, so a report directory can be archived next to the
campaign data and opened from a file:// URL forever.

Layout: ``index.html`` holds the store-wide views; every campaign with
stored per-experiment rows gets a ``campaign-<id>.html`` drill-down page
with fault-site breakdowns (function / opcode / operand kind / bit
range) and the top vulnerable registers and bits.
"""

from __future__ import annotations

from html import escape
from pathlib import Path

from repro.campaign.classify import OUTCOME_ORDER, Outcome
from repro.errors import StatsError
from repro.resultsdb.db import ResultsDB
from repro.resultsdb.queries import (
    CampaignInfo,
    breakdown,
    contingency,
    list_campaigns,
    rank_sites,
)
from repro.stats.intervals import wilson_interval

#: Stacked-bar colors per outcome (crash / soc / benign).
_COLORS = {
    Outcome.CRASH: "#c0392b",
    Outcome.SOC: "#e67e22",
    Outcome.BENIGN: "#27ae60",
}

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; color: #222; }
h1, h2, h3 { font-weight: 600; }
table { border-collapse: collapse; margin: 0.75rem 0 1.5rem; }
th, td { border: 1px solid #ccc; padding: 0.3rem 0.6rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #f4f4f4; }
td.k, th.k { text-align: left; font-family: ui-monospace, monospace; }
.bar { display: flex; height: 1.1rem; width: 24rem;
       border: 1px solid #999; }
.bar span { display: block; height: 100%; }
.legend span { display: inline-block; width: 0.9rem; height: 0.9rem;
               margin: 0 0.3rem 0 1rem; vertical-align: middle; }
.muted { color: #777; font-size: 0.85rem; }
.sig-yes { color: #c0392b; font-weight: 600; }
.sig-no { color: #27ae60; }
.badge { display: inline-block; padding: 0.05rem 0.45rem;
         border-radius: 0.6rem; font-size: 0.8rem; font-weight: 600; }
.badge-passed { background: #e8f8ef; color: #27ae60; }
.badge-failed { background: #fdecea; color: #c0392b; }
.badge-pinned { background: #eaf2fd; color: #2c6cb0; }
.badge-skipped { background: #f4f4f4; color: #777; }
"""


def _validation_badge(verdict: str | None, p_value: float | None) -> str:
    """Auto-validation verdict as a colored badge (em-dash when never
    validated)."""
    if verdict is None:
        return "<span class=\"muted\">&mdash;</span>"
    p = "" if p_value is None else (
        f" <span class=\"muted\">p={p_value:.3g}</span>"
    )
    return (
        f"<span class=\"badge badge-{escape(verdict)}\">"
        f"{escape(verdict)}</span>{p}"
    )


def _page(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        "<meta charset=\"utf-8\">"
        f"<title>{escape(title)}</title>"
        f"<style>{_CSS}</style></head>\n"
        f"<body>\n{body}\n</body></html>\n"
    )


def _stacked_bar(counts: dict[Outcome, int]) -> str:
    total = sum(counts.values())
    if total == 0:
        return "<div class=\"bar\"></div>"
    spans = "".join(
        f"<span style=\"width:{100.0 * counts.get(o, 0) / total:.2f}%;"
        f"background:{_COLORS[o]}\"></span>"
        for o in OUTCOME_ORDER
    )
    return f"<div class=\"bar\">{spans}</div>"


def _legend() -> str:
    bits = "".join(
        f"<span style=\"background:{_COLORS[o]}\"></span>{o.value}"
        for o in OUTCOME_ORDER
    )
    return f"<p class=\"legend muted\">{bits}</p>"


def _pct_ci(hits: int, total: int) -> str:
    """``12.3% [10.1, 14.9]`` with a Wilson interval (em-dash when n=0)."""
    if total <= 0:
        return "&mdash;"
    try:
        iv = wilson_interval(hits, total)
    except StatsError:
        return "&mdash;"
    return (
        f"{iv.p * 100:.1f}% <span class=\"muted\">"
        f"[{iv.low * 100:.1f}, {iv.high * 100:.1f}]</span>"
    )


def _overview_table(infos: list[CampaignInfo]) -> str:
    head = (
        "<tr><th class=\"k\">workload</th><th class=\"k\">tool</th>"
        "<th>n</th><th>stored runs</th>"
        + "".join(f"<th>{o.value}</th>" for o in OUTCOME_ORDER)
        + "<th>distribution</th><th>validation</th><th></th></tr>"
    )
    rows = []
    for info in infos:
        total = sum(info.counts.values())
        cells = "".join(
            f"<td>{info.counts.get(o, 0)}"
            f"<br><span class=\"muted\">{_pct_ci(info.counts.get(o, 0), total)}"
            "</span></td>"
            for o in OUTCOME_ORDER
        )
        link = (
            f"<a href=\"campaign-{info.id}.html\">details</a>"
            if info.runs else "<span class=\"muted\">summary only</span>"
        )
        rows.append(
            f"<tr><td class=\"k\">{escape(info.workload)}</td>"
            f"<td class=\"k\">{escape(info.tool)}</td>"
            f"<td>{info.n}</td><td>{info.runs}</td>{cells}"
            f"<td>{_stacked_bar(info.counts)}</td>"
            f"<td>{_validation_badge(info.validation, info.validation_p)}"
            f"</td><td>{link}</td></tr>"
        )
    return f"<table>{head}{''.join(rows)}</table>"


def _chisq_section(db: ResultsDB, infos: list[CampaignInfo]) -> str:
    """Table-5 view: per-workload cross-tool chi-squared tests.

    With a PINFI campaign present it is the baseline (the paper's
    choice); otherwise every tool pair for the workload is tested.
    """
    by_workload: dict[str, list[CampaignInfo]] = {}
    for info in infos:
        by_workload.setdefault(info.workload, []).append(info)
    rows = []
    for workload, cell_infos in by_workload.items():
        tools = [i.tool for i in cell_infos]
        if len(set(tools)) != len(tools) or len(tools) < 2:
            continue  # ambiguous (multiple seeds) or nothing to compare
        if "PINFI" in tools:
            pairs = [(t, "PINFI") for t in tools if t != "PINFI"]
        else:
            pairs = [
                (tools[i], tools[j])
                for i in range(len(tools)) for j in range(i + 1, len(tools))
            ]
        for tool_a, tool_b in pairs:
            try:
                test = contingency(db, workload, tool_a, tool_b).test()
            except StatsError as exc:
                rows.append(
                    f"<tr><td class=\"k\">{escape(workload)}</td>"
                    f"<td class=\"k\">{escape(tool_a)} vs {escape(tool_b)}"
                    f"</td><td colspan=\"3\" class=\"muted\">"
                    f"not testable: {escape(str(exc))}</td></tr>"
                )
                continue
            p_str = "~0.00" if test.p_value < 0.005 else f"{test.p_value:.2f}"
            verdict = (
                "<span class=\"sig-yes\">yes</span>" if test.significant
                else "<span class=\"sig-no\">no</span>"
            )
            rows.append(
                f"<tr><td class=\"k\">{escape(workload)}</td>"
                f"<td class=\"k\">{escape(tool_a)} vs {escape(tool_b)}</td>"
                f"<td>{test.statistic:.2f}</td><td>{p_str}</td>"
                f"<td>{verdict}</td></tr>"
            )
    if not rows:
        return ""
    head = (
        "<tr><th class=\"k\">workload</th><th class=\"k\">pair</th>"
        "<th>chi&sup2;</th><th>p-value</th>"
        "<th>significant difference?</th></tr>"
    )
    return (
        "<h2>Cross-tool comparison (Table 5 view)</h2>"
        "<p class=\"muted\">Pearson chi-squared homogeneity test on the "
        "outcome contingency table, alpha = 0.05.</p>"
        f"<table>{head}{''.join(rows)}</table>"
    )


def _breakdown_table(db: ResultsDB, campaign_id: int, by: str,
                     title: str, **kwargs) -> str:
    groups = breakdown(db, campaign_id, by=by, **kwargs)
    if not groups:
        return ""
    head = (
        "<tr><th class=\"k\">group</th><th>n</th>"
        + "".join(f"<th>{o.value}</th>" for o in OUTCOME_ORDER)
        + "<th>distribution</th></tr>"
    )
    rows = "".join(
        f"<tr><td class=\"k\">{escape(g.key)}</td><td>{g.total}</td>"
        + "".join(
            f"<td>{_pct_ci(g.frequency(o), g.total)}</td>"
            for o in OUTCOME_ORDER
        )
        + f"<td>{_stacked_bar(g.counts)}</td></tr>"
        for g in groups
    )
    return f"<h3>{escape(title)}</h3><table>{head}{rows}</table>"


def _rank_table(db: ResultsDB, campaign_id: int, by: str, title: str,
                limit: int = 10) -> str:
    ranked = rank_sites(db, campaign_id, by=by, limit=limit)
    if not ranked:
        return ""
    rows = "".join(
        f"<tr><td class=\"k\">{escape(s.key)}</td><td>{s.total}</td>"
        f"<td>{s.hits}</td><td>{_pct_ci(s.hits, s.total)}</td></tr>"
        for s in ranked
    )
    return (
        f"<h3>{escape(title)}</h3>"
        "<table><tr><th class=\"k\">site</th><th>n</th><th>crashes</th>"
        "<th>crash rate (Wilson 95%)</th></tr>"
        f"{rows}</table>"
    )


def _campaign_page(db: ResultsDB, info: CampaignInfo) -> str:
    label = f"{info.workload}/{info.tool}"
    engines = db.execute(
        "SELECT engine, COUNT(*), SUM(COALESCE(snapshot_hit, 0)) FROM runs"
        " WHERE campaign_id=? GROUP BY engine",
        (info.id,),
    ).fetchall()
    engine_bits = ", ".join(
        f"{eng or 'unknown'}: {k} runs ({hits} snapshot hits)"
        for eng, k, hits in engines
    )
    phase_line = ""
    if info.phases and any(info.phases.values()):
        bits = ", ".join(
            f"{name.removesuffix('_s')} {info.phases.get(name, 0.0):.2f}s"
            for name in
            ("translate_s", "prefix_s", "fork_s", "tail_s", "classify_s")
        )
        phase_line = (
            f"<p class=\"muted\">schedule = {escape(info.schedule or 'index')};"
            f" phases: {escape(bits)}</p>"
        )
    body = (
        f"<p><a href=\"index.html\">&larr; all campaigns</a></p>"
        f"<h1>{escape(label)}</h1>"
        f"<p class=\"muted\">n = {info.n}, base seed = {info.base_seed}, "
        f"fault model = {escape(info.fault_model or 'single-bit')}, "
        f"fault candidates = {info.total_candidates or 'unknown'}; "
        f"{escape(engine_bits)}</p>"
        + phase_line
        + _overview_table([info]) + _legend()
        + "<h2>Fault-site sensitivity</h2>"
        + _breakdown_table(db, info.id, "model", "By fault model")
        + _breakdown_table(db, info.id, "func", "By source function")
        + _breakdown_table(db, info.id, "opcode", "By instruction opcode")
        + _breakdown_table(db, info.id, "kind", "By operand kind")
        + _breakdown_table(
            db, info.id, "bit", "By flipped bit range", bit_buckets=8
        )
        + "<h2>Most vulnerable sites</h2>"
        + _rank_table(db, info.id, "register", "Registers by crash rate")
        + _rank_table(db, info.id, "bit", "Bit positions by crash rate")
    )
    return _page(f"{label} — campaign details", body)


def build_report(db: ResultsDB, out_dir: str | Path,
                 title: str = "Fault-injection campaign report") -> Path:
    """Write the report into ``out_dir`` and return the index page path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    infos = list_campaigns(db)
    total_runs = sum(i.runs for i in infos)
    # Mixed-model stores group the Figure-4 view per fault model, so each
    # model gets its own LLFI/REFINE/PINFI outcome comparison; a
    # single-model store keeps the historical single-table layout.
    models = {i.fault_model or "single-bit" for i in infos}
    if len(models) > 1:
        overview = ""
        for model in sorted(models):
            group = [i for i in infos if (i.fault_model or "single-bit") == model]
            overview += (
                f"<h3>Fault model: <code>{escape(model)}</code></h3>"
                + _overview_table(group)
            )
        overview += _legend()
    else:
        overview = _overview_table(infos) + _legend()
    body = (
        f"<h1>{escape(title)}</h1>"
        f"<p class=\"muted\">{len(infos)} campaign(s), "
        f"{sum(sum(i.counts.values()) for i in infos)} experiments "
        f"({total_runs} with per-experiment records). "
        f"Store: <code>{escape(db.path)}</code></p>"
        "<h2>Outcome distributions (Figure 4 view)</h2>"
        + overview
        + _chisq_section(db, infos)
    )
    (out / "index.html").write_text(_page(title, body), encoding="utf-8")
    for info in infos:
        if info.runs:
            (out / f"campaign-{info.id}.html").write_text(
                _campaign_page(db, info), encoding="utf-8"
            )
    return out / "index.html"
