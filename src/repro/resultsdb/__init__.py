"""SQLite-backed campaign results store (stdlib only).

Normalizes fault-injection campaigns into ``campaigns -> runs -> faults``
with finalized outcome ``tallies``, fed write-through from the live
telemetry stream or backfilled from event logs / result JSON, and read
back through a typed query layer that reproduces the in-memory analysis
bit-for-bit.  See :mod:`repro.resultsdb.schema` for the data model and
``docs/api.md`` for the ingest idempotency contract.
"""

from repro.resultsdb.db import ResultsDB
from repro.resultsdb.ingest import (
    DatabaseSink,
    ingest_events,
    ingest_result,
    ingest_results_file,
)
from repro.resultsdb.queries import (
    CampaignInfo,
    SiteRank,
    breakdown,
    contingency,
    find_campaign,
    list_campaigns,
    matrix_from_db,
    outcome_counts,
    rank_sites,
    to_campaign_result,
)
from repro.resultsdb.report import build_report

__all__ = [
    "CampaignInfo",
    "DatabaseSink",
    "ResultsDB",
    "SiteRank",
    "breakdown",
    "build_report",
    "contingency",
    "find_campaign",
    "ingest_events",
    "ingest_result",
    "ingest_results_file",
    "list_campaigns",
    "matrix_from_db",
    "outcome_counts",
    "rank_sites",
    "to_campaign_result",
]
