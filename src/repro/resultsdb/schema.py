"""Relational schema of the campaign results store.

The store normalizes a fault-injection study into four tables mirroring
how campaigns are actually structured:

.. code-block:: text

    campaigns ──< runs ──1 faults        outcomes (lookup)
        │
        └──< tallies (finalized outcome counts)

* ``campaigns`` — one row per (workload, tool, base_seed, n) cell.  The
  UNIQUE constraint over those four columns is the identity used by
  get-or-create, so re-ingesting the same campaign (a resumed checkpoint,
  a requeued distributed task, a second replay of the same event log)
  lands on the same row instead of forking a duplicate.
* ``runs`` — one row per experiment, keyed ``(campaign_id, idx)`` where
  ``idx`` is the experiment's **global index**.  Every experiment is a
  pure function of ``(base_seed, workload, tool, idx)``, so a row with
  the same key is provably bit-identical to the one already stored:
  ingest uses ``INSERT OR IGNORE`` and duplicates (at-least-once task
  delivery, checkpoint resume replays) simply vanish.
* ``faults`` — the fault-site log for a run, split out because benign
  no-fault runs have none.  ``opcode`` (first token of the instruction
  text) and ``operand_kind`` (prefix of the operand descriptor, e.g.
  ``ireg`` / ``freg`` / ``flags``) are denormalized at ingest so the
  hot GROUP BY queries never parse strings.  Values travel as the same
  tag-encoded JSON :mod:`repro.campaign.io` uses, so floats round-trip
  bit-exactly.
* ``tallies`` — outcome counts as finalized by ``campaign_finish`` /
  ``cell_finish`` events (or imported from summary JSON).  Queries
  prefer tallies when present and fall back to aggregating ``runs``,
  so a live, partially-ingested campaign still reads consistently.
"""

from __future__ import annotations

#: Bumped on incompatible schema changes; stored in ``meta``.  Additive
#: nullable columns do **not** bump it: they are applied in place by
#: :data:`ADDITIVE_COLUMNS` and older builds (whose queries all name
#: their columns explicitly) simply never read them.
SCHEMA_VERSION = 1

#: Nullable columns added after a table first shipped, applied by
#: ``ALTER TABLE .. ADD COLUMN`` when opening a store that predates them.
#: table -> {column name -> type}.
ADDITIVE_COLUMNS: dict[str, dict[str, str]] = {
    "campaigns": {
        "schedule": "TEXT",     # execution order: 'index' / 'trigger'
        "phases": "TEXT",       # JSON per-phase seconds (campaign_finish)
        "fault_model": "TEXT",  # repro.fi.models spec (NULL = old log)
        # Auto-validation verdict from the campaign service:
        # 'passed' / 'failed' / 'pinned' / 'skipped' (NULL = never validated)
        "validation": "TEXT",
        "validation_p": "REAL",  # chi-squared p-value vs the pinned baseline
    },
    "faults": {
        "model": "TEXT",        # fault-model spec (NULL = pre-model row)
        "bits": "TEXT",         # JSON bit list (multi-bit/cache-line)
        "address": "INTEGER",   # corrupted memory address (memory models)
        "dwell": "INTEGER",     # stuck-at window length (1 = single shot)
    },
}

SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS outcomes (
    id   INTEGER PRIMARY KEY,
    name TEXT UNIQUE NOT NULL
);

CREATE TABLE IF NOT EXISTS campaigns (
    id               INTEGER PRIMARY KEY,
    workload         TEXT NOT NULL,
    tool             TEXT NOT NULL,
    n                INTEGER NOT NULL,
    -- -1 = unknown (summary imports carry no seed)
    base_seed        INTEGER NOT NULL DEFAULT -1,
    total_candidates INTEGER,
    golden_output    TEXT,              -- JSON array of output lines
    total_cycles     REAL,
    total_steps      INTEGER,
    source           TEXT,              -- provenance: file/flag that fed it
    schedule         TEXT,              -- 'index' / 'trigger' (NULL = old log)
    phases           TEXT,              -- JSON: per-phase seconds breakdown
    fault_model      TEXT,              -- repro.fi.models spec (NULL = old)
    UNIQUE (workload, tool, base_seed, n)
);

CREATE TABLE IF NOT EXISTS runs (
    campaign_id  INTEGER NOT NULL REFERENCES campaigns(id),
    idx          INTEGER NOT NULL,
    seed         INTEGER NOT NULL,
    outcome_id   INTEGER NOT NULL REFERENCES outcomes(id),
    cycles       REAL NOT NULL,
    steps        INTEGER NOT NULL,
    trap         TEXT,
    exit_code    INTEGER NOT NULL DEFAULT 0,
    engine       TEXT,
    snapshot_hit INTEGER,               -- NULL = fast path off/unknown
    PRIMARY KEY (campaign_id, idx)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS faults (
    campaign_id   INTEGER NOT NULL,
    idx           INTEGER NOT NULL,
    tool          TEXT NOT NULL,
    dynamic_index INTEGER NOT NULL,     -- trigger: dynamic instruction count
    pc            INTEGER NOT NULL,
    func          TEXT NOT NULL,
    block         TEXT,
    instr_text    TEXT NOT NULL,
    opcode        TEXT NOT NULL,        -- first token of instr_text
    operand_index INTEGER NOT NULL,
    operand_desc  TEXT NOT NULL,        -- register/target, e.g. "ireg:3"
    operand_kind  TEXT NOT NULL,        -- prefix of operand_desc
    bit           INTEGER NOT NULL,     -- -1 = not bit-indexed (cache-line)
    value_before  TEXT,                 -- tag-encoded JSON (io helpers)
    value_after   TEXT,
    model         TEXT,                 -- fault-model spec (NULL = pre-model)
    bits          TEXT,                 -- JSON bit list (multi-bit masks)
    address       INTEGER,             -- memory address (memory models)
    dwell         INTEGER,             -- stuck-at window (1 = single shot)
    PRIMARY KEY (campaign_id, idx),
    FOREIGN KEY (campaign_id, idx) REFERENCES runs(campaign_id, idx)
) WITHOUT ROWID;

-- Pinned reference outcome distributions for auto-validation: one per
-- (workload, tool, fault model).  The campaign service's validate step
-- chi-squares a freshly drained campaign against its baseline; 'pinned'
-- records where the reference came from.  Creation is additive (the
-- CREATE TABLE IF NOT EXISTS script runs on every open), so pre-service
-- stores gain the table without a version bump.
CREATE TABLE IF NOT EXISTS baselines (
    workload    TEXT NOT NULL,
    tool        TEXT NOT NULL,
    fault_model TEXT NOT NULL DEFAULT 'single-bit',
    n           INTEGER NOT NULL,
    base_seed   INTEGER NOT NULL DEFAULT -1,
    counts      TEXT NOT NULL,           -- JSON: outcome name -> count
    source      TEXT,                    -- provenance (campaign id, file...)
    pinned_at   REAL,                    -- unix timestamp
    PRIMARY KEY (workload, tool, fault_model)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS tallies (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    outcome_id  INTEGER NOT NULL REFERENCES outcomes(id),
    count       INTEGER NOT NULL,
    PRIMARY KEY (campaign_id, outcome_id)
) WITHOUT ROWID;

CREATE INDEX IF NOT EXISTS ix_campaigns_workload ON campaigns(workload);
CREATE INDEX IF NOT EXISTS ix_campaigns_tool     ON campaigns(tool);
CREATE INDEX IF NOT EXISTS ix_runs_outcome       ON runs(campaign_id, outcome_id);
CREATE INDEX IF NOT EXISTS ix_faults_func        ON faults(campaign_id, func);
CREATE INDEX IF NOT EXISTS ix_faults_register    ON faults(campaign_id, operand_desc);
CREATE INDEX IF NOT EXISTS ix_faults_opcode      ON faults(campaign_id, opcode);
CREATE INDEX IF NOT EXISTS ix_faults_bit         ON faults(campaign_id, bit);
CREATE INDEX IF NOT EXISTS ix_faults_trigger     ON faults(campaign_id, dynamic_index);
"""
