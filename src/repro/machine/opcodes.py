"""Decoded opcode numbers for the interpreter's dispatch loop.

The loader specializes each machine instruction by operand shape (register
vs immediate source, register-relative vs absolute memory) so the hot loop
never inspects operand kinds.
"""

from __future__ import annotations

# data movement
MOV_RR = 1
MOV_RI = 2
FMOV = 3
FCONST = 4
LEA_RD = 5    # dst <- base + disp
LEA_ABS = 6   # dst <- absolute address (global)
# memory
LOAD_RD = 10
LOAD_ABS = 11
STORE_RD = 12
STORE_RD_I = 13
STORE_ABS = 14
STORE_ABS_I = 15
FLOAD_RD = 16
FLOAD_ABS = 17
FSTORE_RD = 18
FSTORE_ABS = 19
# integer ALU (writes FLAGS)
ADD_RR = 20
ADD_RI = 21
SUB_RR = 22
SUB_RI = 23
IMUL_RR = 24
IMUL_RI = 25
AND_RR = 26
AND_RI = 27
OR_RR = 28
OR_RI = 29
XOR_RR = 30
XOR_RI = 31
SHL_RR = 32
SHL_RI = 33
SAR_RR = 34
SAR_RI = 35
NEG = 36
IDIV_RR = 37
IDIV_RI = 38
IREM_RR = 39
IREM_RI = 40
# float ALU
FADD = 50
FSUB = 51
FMUL = 52
FDIV = 53
# compare / conditions
CMP_RR = 60
CMP_RI = 61
FCMP = 62
SETCC = 63
CMOV = 64
# control flow
JMP = 70
JCC = 71
CALL = 72
INTR = 73
RET = 74
# stack
PUSH = 80
POP = 81
# conversion
CVTSI2SD = 90
CVTTSD2SI = 91
# instrumentation
FI_CHECK = 100

#: condition-code ids (must match target.CONDITION_CODES semantics)
CC_IDS = {
    "e": 0, "ne": 1, "l": 2, "le": 3, "g": 4, "ge": 5,
    "b": 6, "be": 7, "a": 8, "ae": 9, "s": 10, "ns": 11,
    "p": 12, "np": 13,
}
