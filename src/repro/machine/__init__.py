"""The simulated machine: loader, CPU interpreter, runtime intrinsics."""

from repro.machine.cpu import (
    CPU,
    ExecutionResult,
    FaultPlan,
    FaultRecord,
    execute,
)
from repro.machine.loader import (
    DEFAULT_MEM_SIZE,
    InstrInfo,
    LoadedProgram,
    NULL_GUARD,
    load_binary,
)
from repro.machine.intrinsics import INTRINSIC_TABLE

__all__ = [
    "CPU",
    "ExecutionResult",
    "FaultPlan",
    "FaultRecord",
    "execute",
    "DEFAULT_MEM_SIZE",
    "InstrInfo",
    "LoadedProgram",
    "NULL_GUARD",
    "load_binary",
    "INTRINSIC_TABLE",
]
