"""The sx64 CPU interpreter.

Executes a :class:`~repro.machine.loader.LoadedProgram` with full
architectural state: 64-bit two's-complement integer registers, IEEE-754
double float registers, an x86-layout FLAGS register, and a flat byte-
addressed memory with null/stack guard regions.

Fault-injection observation points (one CPU, three tools):

* **PINFI** (binary level) — ``attach_pinfi`` arms a per-candidate dynamic
  counter in the main loop (the DBI view of the unmodified binary); after
  the single injection the tool *detaches*, mirroring the paper's optimized
  PINFI.
* **REFINE** (backend level) — ``fi_check`` pseudo-instructions compiled
  into the binary consult the same kind of counter.
* **LLFI** (IR level) — ``__fi_inject_*`` intrinsic stubs called from the
  instrumented code route through :meth:`llfi_visit_int`/``_float``.

Crashes surface as :class:`~repro.errors.MachineTrap` subclasses recorded in
the :class:`ExecutionResult` (segfault, illegal instruction, divide-by-zero,
stack overflow, timeout, abnormal exit).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from repro.errors import (
    DivideByZero,
    ExecutionTimeout,
    IllegalInstruction,
    MachineTrap,
    SegmentationFault,
    StackOverflow,
)
from repro.machine import opcodes as O
from repro.machine.intrinsics import INTRINSIC_TABLE
from repro.machine.loader import NULL_GUARD, LoadedProgram
from repro.machine.registers import (
    RAX_IDX,
    RBP_IDX,
    RSP_IDX,
    SPACE_FLOAT,
    SPACE_INT,
)
from repro.utils.bits import MASK64, to_signed64
from repro.utils.ieee754 import flip_double_bit

_PACK_D = struct.Struct("<d")

#: x86 status-flag bit positions.
_CF = 1
_PF = 1 << 2
_ZF = 1 << 6
_SF = 1 << 7
_OF = 1 << 11

#: Sentinel return address that terminates the program.
HALT_PC = -1

_INT64_MIN = -(1 << 63)

#: PF lookup: x86 parity is set when the low result byte has an even
#: number of set bits.  Indexed by ``result & 255``; yields ``_PF`` or 0.
PARITY_TABLE = tuple(
    _PF if bin(i).count("1") % 2 == 0 else 0 for i in range(256)
)


@dataclass
class FaultRecord:
    """One injected fault, with everything needed for replay (the paper's
    fault log: target instruction, operand, and bit).

    The trailing fields generalize the log beyond the paper's single-bit
    model (:mod:`repro.fi.models`): ``model`` is the canonical fault-model
    spec, ``bits`` the full set of flipped positions for multi-bit upsets,
    ``address`` the corrupted location for memory models, and ``dwell`` the
    width of a stuck-at window in dynamic candidates.  ``bit`` is ``None``
    for faults with no single bit index (e.g. cache-line bursts).
    """

    tool: str
    dynamic_index: int
    pc: int
    func: str
    block: str
    instr_text: str
    operand_index: int
    operand_desc: str
    bit: int | None
    value_before: object = None
    value_after: object = None
    model: str = "single-bit"
    bits: tuple[int, ...] | None = None
    address: int | None = None
    dwell: int = 1


@dataclass
class ExecutionResult:
    """Observable outcome of one program execution."""

    exit_code: int = 0
    output: list[str] = field(default_factory=list)
    steps: int = 0
    trap: str | None = None
    trap_pc: int = -1
    fault: FaultRecord | None = None
    #: dynamic execution count per static instruction
    counts: list[int] = field(default_factory=list)
    #: counts while a DBI tool was attached (PINFI only)
    counts_attached: list[int] | None = None
    #: number of candidate instructions executed while attached (PINFI)
    attached_candidates: int = 0

    @property
    def exit_status(self) -> int:
        """Process-level exit status: the low 8 bits of RAX, exactly what
        ``waitpid`` would report on the machines the paper measured.  The
        raw signed ``exit_code`` is kept for ISA-level inspection; anything
        reasoning about process success/failure must use this view."""
        return self.exit_code & 0xFF

    @property
    def crashed(self) -> bool:
        return self.trap is not None or self.exit_status != 0


class FaultPlan:
    """Pre-drawn fault coordinates: which dynamic candidate, and how the
    operand/bit are chosen once the candidate's outputs are known.

    ``operand_pick`` and ``bit_pick`` are uniform draws in [0, 1) made
    up-front so an experiment is a pure function of its seed.

    ``corrupt_opcode`` models the paper's Section 4.5 extension: a flip in
    the instruction's OP-code field rather than an output register.  The
    assembly-emitting stage of the real REFINE rejects invalid OP codes, so
    like the paper this is off by default; when enabled the corrupted
    instruction raises an illegal-instruction trap.

    ``model`` selects a pluggable fault model (:mod:`repro.fi.models`).
    ``None`` is the legacy single-bit path — the hot loop's fast case.  A
    model plan may span a **dwell window**: every candidate with dynamic
    count in ``[target_index, last_index]`` applies the fault (single-shot
    plans have ``last_index == target_index``).  ``picks`` carries any
    extra pre-drawn uniforms the model needs, and ``state`` is per-run
    scratch (e.g. the stuck-at site chosen at first application) that tool
    arming resets.
    """

    __slots__ = (
        "target_index", "operand_pick", "bit_pick", "tool", "corrupt_opcode",
        "last_index", "model", "picks", "state",
    )

    def __init__(
        self,
        target_index: int,
        operand_pick: float,
        bit_pick: float,
        tool: str,
        corrupt_opcode: bool = False,
        model=None,
        picks: tuple = (),
        last_index: int | None = None,
    ) -> None:
        self.target_index = target_index
        self.operand_pick = operand_pick
        self.bit_pick = bit_pick
        self.tool = tool
        self.corrupt_opcode = corrupt_opcode
        self.last_index = target_index if last_index is None else last_index
        self.model = model
        self.picks = picks
        self.state = None

    def choose(self, outputs: tuple) -> tuple[int, int, int, int, int]:
        """Select (operand_index, space, reg_index, width, bit)."""
        op_idx = min(int(self.operand_pick * len(outputs)), len(outputs) - 1)
        space, reg_idx, width = outputs[op_idx]
        bit = min(int(self.bit_pick * width), width - 1)
        return op_idx, space, reg_idx, width, bit


class CPU:
    """One execution context over a loaded program."""

    def __init__(self, program: LoadedProgram) -> None:
        self.program = program
        self.mem = program.fresh_memory()
        self.iregs: list[int] = [0] * 14
        self.fregs: list[float] = [0.0] * 16
        self.flags = 0
        self.output: list[str] = []
        self.counts = [0] * len(program.code)
        self.steps = 0
        self.budget = 1 << 62

        # PINFI state
        self._attached = False
        self._pin_count = 0
        self._pin_plan: FaultPlan | None = None
        self.counts_attached: list[int] | None = None
        self.attached_candidates = 0

        # REFINE state
        self._refine_count = 0
        self._refine_plan: FaultPlan | None = None

        # LLFI state
        self._llfi_count = 0
        self._llfi_plan: FaultPlan | None = None

        self.fault: FaultRecord | None = None
        #: pc of the instruction currently executing an intrinsic
        self._cur_pc = 0

        #: when set to a list, the loop appends the pc of every dynamic
        #: candidate it observes (residency recording, repro.fi.models)
        self._site_trace: list[int] | None = None

        # Snapshot recording (armed by repro.snapshot): every
        # ``_snap_every`` dynamic instructions the main loop syncs its
        # local state back into the CPU and calls ``_snap_hook(cpu, pc)``
        # with the pc of the *next* instruction — a valid resume point.
        self._snap_every = 0
        self._snap_hook = None

        # Fast-engine per-CPU context: (translation, FL, blocks).  Owned by
        # repro.engine.fast; lives here so one CPU reused across many runs
        # keeps its instantiated block closures.
        self._fast_ctx = None

    # -- tool arming ---------------------------------------------------------

    def attach_pinfi(self, plan: FaultPlan | None) -> None:
        """Attach the DBI tool (candidate counting + optional injection)."""
        self._attached = True
        self._pin_plan = plan
        if plan is not None:
            plan.state = None
        self.counts_attached = self.counts
        # Execution counts accumulate into the attached array until detach.

    def arm_refine(self, plan: FaultPlan) -> None:
        plan.state = None
        self._refine_plan = plan

    def arm_llfi(self, plan: FaultPlan) -> None:
        plan.state = None
        self._llfi_plan = plan

    def record_snapshots(self, every: int, hook) -> None:
        """Invoke ``hook(cpu, next_pc)`` every ``every`` dynamic instructions.

        The hook fires at an instruction boundary with all interpreter
        state (registers, flags, memory, counters, ``steps``) synced onto
        the CPU object, so :mod:`repro.snapshot` can capture a consistent,
        resumable snapshot.  Recording is meant for fault-free golden runs;
        it costs one extra integer comparison per instruction.
        """
        if every <= 0:
            raise ValueError("snapshot interval must be >= 1")
        self._snap_every = every
        self._snap_hook = hook

    # -- fault application ----------------------------------------------------

    def _apply_fault(
        self, plan: FaultPlan, pc: int, outputs: tuple, dynamic_index: int
    ) -> None:
        """Apply one fault observation at a register-level candidate site.

        Plans without a model object take the legacy single-bit path
        (:meth:`_apply_flip`); model plans delegate so multi-bit, memory,
        and stuck-at semantics live in :mod:`repro.fi.models`.
        """
        model = plan.model
        if model is None:
            self._apply_flip(plan, pc, outputs, dynamic_index)
        else:
            model.apply(self, plan, pc, outputs, dynamic_index)

    def _apply_flip(
        self, plan: FaultPlan, pc: int, outputs: tuple, dynamic_index: int
    ) -> None:
        info = self.program.info[pc]
        model_spec = "single-bit" if plan.model is None else plan.model.spec
        if plan.corrupt_opcode:
            # Section 4.5 extension: the bit lands in the OP-code encoding,
            # yielding an undecodable instruction.
            self.fault = FaultRecord(
                tool=plan.tool,
                dynamic_index=dynamic_index,
                pc=pc,
                func=info.func,
                block=info.block,
                instr_text=info.text,
                operand_index=-1,
                operand_desc="opcode",
                bit=min(int(plan.bit_pick * 8), 7),
                value_before=info.text,
                value_after="<invalid opcode>",
                model=model_spec,
            )
            raise IllegalInstruction("corrupted opcode", pc)
        op_idx, space, reg_idx, width, bit = plan.choose(outputs)
        if space == SPACE_INT:
            before = self.iregs[reg_idx]
            after = to_signed64((before & MASK64) ^ (1 << bit))
            self.iregs[reg_idx] = after
            desc = f"ireg:{reg_idx}"
        elif space == SPACE_FLOAT:
            before = self.fregs[reg_idx]
            after = flip_double_bit(before, bit)
            self.fregs[reg_idx] = after
            desc = f"freg:{reg_idx}"
        else:
            before = self.flags
            after = self.flags ^ (1 << bit)
            self.flags = after
            desc = "flags"
        self.fault = FaultRecord(
            tool=plan.tool,
            dynamic_index=dynamic_index,
            pc=pc,
            func=info.func,
            block=info.block,
            instr_text=info.text,
            operand_index=op_idx,
            operand_desc=desc,
            bit=bit,
            value_before=before,
            value_after=after,
            model=model_spec,
        )

    # -- LLFI stub hooks (invoked from intrinsics) ---------------------------

    def llfi_visit_int(self, value: int, width: int = 64) -> int:
        self._llfi_count += 1
        if self._site_trace is not None:
            self._site_trace.append(self._cur_pc)
        plan = self._llfi_plan
        if plan is None or not (
            plan.target_index <= self._llfi_count <= plan.last_index
        ):
            return value
        if plan.model is not None:
            return plan.model.apply_value(
                self, plan, value, width, False, self._llfi_count
            )
        # LLFI flips a bit of the IR value, uniform over its bit width.
        bit = min(int(plan.bit_pick * width), width - 1)
        after = to_signed64((value & MASK64) ^ (1 << bit))
        pc = self._cur_pc
        info = self.program.info[pc]
        self.fault = FaultRecord(
            tool=plan.tool,
            dynamic_index=self._llfi_count,
            pc=pc,
            func=info.func,
            block=info.block,
            instr_text=info.text,
            operand_index=0,
            operand_desc="ir-value:i64",
            bit=bit,
            value_before=value,
            value_after=after,
        )
        return after

    def llfi_visit_float(self, value: float) -> float:
        self._llfi_count += 1
        if self._site_trace is not None:
            self._site_trace.append(self._cur_pc)
        plan = self._llfi_plan
        if plan is None or not (
            plan.target_index <= self._llfi_count <= plan.last_index
        ):
            return value
        if plan.model is not None:
            return plan.model.apply_value(
                self, plan, value, 64, True, self._llfi_count
            )
        bit = min(int(plan.bit_pick * 64), 63)
        after = flip_double_bit(value, bit)
        pc = self._cur_pc
        info = self.program.info[pc]
        self.fault = FaultRecord(
            tool=plan.tool,
            dynamic_index=self._llfi_count,
            pc=pc,
            func=info.func,
            block=info.block,
            instr_text=info.text,
            operand_index=0,
            operand_desc="ir-value:f64",
            bit=bit,
            value_before=value,
            value_after=after,
        )
        return after

    @property
    def llfi_dynamic_count(self) -> int:
        return self._llfi_count

    @property
    def refine_dynamic_count(self) -> int:
        return self._refine_count

    @property
    def pinfi_dynamic_count(self) -> int:
        return self._pin_count

    # -- memory ---------------------------------------------------------------

    def _read_i64(self, addr: int, pc: int) -> int:
        if addr < NULL_GUARD or addr + 8 > self.program.mem_size:
            raise SegmentationFault(f"load from {addr:#x}", pc)
        return int.from_bytes(self.mem[addr : addr + 8], "little", signed=True)

    def _write_i64(self, addr: int, value: int, pc: int) -> None:
        if addr < NULL_GUARD or addr + 8 > self.program.mem_size:
            raise SegmentationFault(f"store to {addr:#x}", pc)
        self.mem[addr : addr + 8] = (value & MASK64).to_bytes(8, "little")

    def _read_f64(self, addr: int, pc: int) -> float:
        if addr < NULL_GUARD or addr + 8 > self.program.mem_size:
            raise SegmentationFault(f"fload from {addr:#x}", pc)
        return _PACK_D.unpack_from(self.mem, addr)[0]

    def _write_f64(self, addr: int, value: float, pc: int) -> None:
        if addr < NULL_GUARD or addr + 8 > self.program.mem_size:
            raise SegmentationFault(f"fstore to {addr:#x}", pc)
        _PACK_D.pack_into(self.mem, addr, value)

    # -- main loop ----------------------------------------------------------

    def prepare_entry(self) -> int:
        """Set up the initial stack and return the entry pc.

        Factored out of :meth:`run` so alternative execution engines can
        reuse the exact same process-start semantics (sentinel return
        address at the top of the stack) without going through ``_loop``.
        """
        prog = self.program
        # Initial stack: sentinel return address at the top.
        self.iregs[RSP_IDX] = prog.stack_top
        self.iregs[RBP_IDX] = prog.stack_top
        self._write_i64(prog.stack_top, HALT_PC & MASK64, -1)
        # (stored as unsigned; read back signed gives -1)
        return prog.func_entry[prog.binary.entry]

    def run(self, budget: int | None = None) -> ExecutionResult:
        """Execute from the entry point until halt, trap, or budget."""
        return self._execute(self.prepare_entry(), budget)

    def resume(self, pc: int, budget: int | None = None) -> ExecutionResult:
        """Continue executing already-restored architectural state at ``pc``.

        Used by :mod:`repro.snapshot` after
        :func:`repro.snapshot.restore_snapshot` re-established the register
        file, flags, memory, output and dynamic counters: execution picks up
        mid-program exactly where the snapshot was taken, and the returned
        :class:`ExecutionResult` is bit-identical to a from-scratch run's
        (``steps`` and ``counts`` include the restored prefix).
        """
        return self._execute(pc, budget)

    def _execute(self, pc: int, budget: int | None) -> ExecutionResult:
        if budget is not None:
            self.budget = budget
        try:
            self._loop(pc)
        except MachineTrap as trap:
            return self.build_result(trap=trap.kind, trap_pc=trap.pc)
        return self.build_result()

    def build_result(
        self, trap: str | None = None, trap_pc: int = -1
    ) -> ExecutionResult:
        """Package the current architectural state as an ExecutionResult."""
        result = ExecutionResult()
        result.trap = trap
        result.trap_pc = trap_pc
        result.exit_code = self.iregs[RAX_IDX] if trap is None else 0
        result.output = self.output
        result.steps = self.steps
        result.fault = self.fault
        result.counts = self.counts
        result.counts_attached = self.counts_attached
        result.attached_candidates = self.attached_candidates
        return result

    def _loop(self, entry_pc: int) -> None:  # noqa: C901 - dispatch loop
        prog = self.program
        code = prog.code
        costs = prog.cost
        is_cand = prog.is_candidate
        outputs = prog.outputs
        iregs = self.iregs
        fregs = self.fregs
        mem = self.mem
        mem_size = prog.mem_size
        stack_limit = prog.stack_limit
        counts = self.counts
        n_code = len(code)
        intr_impls = INTRINSIC_TABLE.impls

        pc = entry_pc
        steps = self.steps
        budget = self.budget
        flags = self.flags
        attached = self._attached
        pin_count = self._pin_count
        pin_plan = self._pin_plan
        refine_count = self._refine_count
        refine_plan = self._refine_plan
        snap_every = self._snap_every
        snap_hook = self._snap_hook
        snap_at = steps + snap_every if snap_every else 1 << 62
        site_trace = self._site_trace

        try:
            while True:
                cur = pc
                t = code[cur]
                op = t[0]

                if op == O.MOV_RR:
                    iregs[t[1]] = iregs[t[2]]
                    pc = cur + 1
                elif op == O.MOV_RI:
                    iregs[t[1]] = t[2]
                    pc = cur + 1
                elif op == O.LOAD_RD:
                    addr = iregs[t[2]] + t[3]
                    if addr < NULL_GUARD or addr + 8 > mem_size:
                        raise SegmentationFault(f"load from {addr:#x}", cur)
                    iregs[t[1]] = int.from_bytes(
                        mem[addr : addr + 8], "little", signed=True
                    )
                    pc = cur + 1
                elif op == O.FLOAD_RD:
                    addr = iregs[t[2]] + t[3]
                    if addr < NULL_GUARD or addr + 8 > mem_size:
                        raise SegmentationFault(f"fload from {addr:#x}", cur)
                    fregs[t[1]] = _PACK_D.unpack_from(mem, addr)[0]
                    pc = cur + 1
                elif op == O.ADD_RR or op == O.ADD_RI:
                    a = iregs[t[1]]
                    b = iregs[t[2]] if op == O.ADD_RR else t[2]
                    r = a + b
                    wrapped = r if _INT64_MIN <= r < -_INT64_MIN else to_signed64(r)
                    iregs[t[1]] = wrapped
                    flags = PARITY_TABLE[wrapped & 255]
                    if wrapped == 0:
                        flags |= _ZF
                    elif wrapped < 0:
                        flags |= _SF
                    if r != wrapped:
                        flags |= _OF
                    if (a & MASK64) + (b & MASK64) > MASK64:
                        flags |= _CF
                    pc = cur + 1
                elif op == O.SUB_RR or op == O.SUB_RI:
                    a = iregs[t[1]]
                    b = iregs[t[2]] if op == O.SUB_RR else t[2]
                    r = a - b
                    wrapped = r if _INT64_MIN <= r < -_INT64_MIN else to_signed64(r)
                    iregs[t[1]] = wrapped
                    flags = PARITY_TABLE[wrapped & 255]
                    if wrapped == 0:
                        flags |= _ZF
                    elif wrapped < 0:
                        flags |= _SF
                    if r != wrapped:
                        flags |= _OF
                    if (a & MASK64) < (b & MASK64):
                        flags |= _CF
                    pc = cur + 1
                elif op == O.CMP_RR or op == O.CMP_RI:
                    a = iregs[t[1]]
                    b = iregs[t[2]] if op == O.CMP_RR else t[2]
                    r = a - b
                    wrapped = r if _INT64_MIN <= r < -_INT64_MIN else to_signed64(r)
                    flags = PARITY_TABLE[wrapped & 255]
                    if wrapped == 0:
                        flags |= _ZF
                    elif wrapped < 0:
                        flags |= _SF
                    if r != wrapped:
                        flags |= _OF
                    if (a & MASK64) < (b & MASK64):
                        flags |= _CF
                    pc = cur + 1
                elif op == O.JCC:
                    cc = t[1]
                    if cc == 1:  # ne
                        taken = not flags & _ZF
                    elif cc == 0:  # e
                        taken = bool(flags & _ZF)
                    elif cc == 2:  # l
                        taken = bool(flags & _SF) != bool(flags & _OF)
                    elif cc == 3:  # le
                        taken = bool(flags & _ZF) or (
                            bool(flags & _SF) != bool(flags & _OF)
                        )
                    elif cc == 4:  # g
                        taken = not flags & _ZF and (
                            bool(flags & _SF) == bool(flags & _OF)
                        )
                    elif cc == 5:  # ge
                        taken = bool(flags & _SF) == bool(flags & _OF)
                    elif cc == 6:  # b
                        taken = bool(flags & _CF)
                    elif cc == 7:  # be
                        taken = bool(flags & (_CF | _ZF))
                    elif cc == 8:  # a
                        taken = not flags & (_CF | _ZF)
                    elif cc == 9:  # ae
                        taken = not flags & _CF
                    elif cc == 10:  # s
                        taken = bool(flags & _SF)
                    elif cc == 11:  # ns
                        taken = not flags & _SF
                    elif cc == 12:  # p
                        taken = bool(flags & _PF)
                    else:  # np
                        taken = not flags & _PF
                    pc = t[2] if taken else cur + 1
                elif op == O.JMP:
                    pc = t[1]
                elif op == O.FADD:
                    fregs[t[1]] = fregs[t[1]] + fregs[t[2]]
                    pc = cur + 1
                elif op == O.FMUL:
                    fregs[t[1]] = fregs[t[1]] * fregs[t[2]]
                    pc = cur + 1
                elif op == O.FSUB:
                    fregs[t[1]] = fregs[t[1]] - fregs[t[2]]
                    pc = cur + 1
                elif op == O.FDIV:
                    a = fregs[t[1]]
                    b = fregs[t[2]]
                    if b == 0.0:
                        if a == 0.0 or a != a:
                            fregs[t[1]] = math.nan
                        else:
                            fregs[t[1]] = math.copysign(
                                math.inf, a
                            ) * math.copysign(1.0, b)
                    else:
                        fregs[t[1]] = a / b
                    pc = cur + 1
                elif op == O.STORE_RD:
                    addr = iregs[t[1]] + t[2]
                    if addr < NULL_GUARD or addr + 8 > mem_size:
                        raise SegmentationFault(f"store to {addr:#x}", cur)
                    mem[addr : addr + 8] = (iregs[t[3]] & MASK64).to_bytes(
                        8, "little"
                    )
                    pc = cur + 1
                elif op == O.FSTORE_RD:
                    addr = iregs[t[1]] + t[2]
                    if addr < NULL_GUARD or addr + 8 > mem_size:
                        raise SegmentationFault(f"fstore to {addr:#x}", cur)
                    _PACK_D.pack_into(mem, addr, fregs[t[3]])
                    pc = cur + 1
                elif op == O.FMOV:
                    fregs[t[1]] = fregs[t[2]]
                    pc = cur + 1
                elif op == O.FCONST:
                    fregs[t[1]] = t[2]
                    pc = cur + 1
                elif op == O.SHL_RI or op == O.SHL_RR:
                    count = (t[2] if op == O.SHL_RI else iregs[t[2]]) & 63
                    r = to_signed64(iregs[t[1]] << count)
                    iregs[t[1]] = r
                    flags = (
                        _ZF if r == 0 else (_SF if r < 0 else 0)
                    ) | PARITY_TABLE[r & 255]
                    pc = cur + 1
                elif op == O.SAR_RI or op == O.SAR_RR:
                    count = (t[2] if op == O.SAR_RI else iregs[t[2]]) & 63
                    r = iregs[t[1]] >> count
                    iregs[t[1]] = r
                    flags = (
                        _ZF if r == 0 else (_SF if r < 0 else 0)
                    ) | PARITY_TABLE[r & 255]
                    pc = cur + 1
                elif op == O.IMUL_RR or op == O.IMUL_RI:
                    a = iregs[t[1]]
                    b = iregs[t[2]] if op == O.IMUL_RR else t[2]
                    r = a * b
                    wrapped = r if _INT64_MIN <= r < -_INT64_MIN else to_signed64(r)
                    iregs[t[1]] = wrapped
                    flags = (
                        _ZF if wrapped == 0 else (_SF if wrapped < 0 else 0)
                    ) | PARITY_TABLE[wrapped & 255]
                    if r != wrapped:
                        flags |= _OF | _CF
                    pc = cur + 1
                elif op == O.AND_RR or op == O.AND_RI:
                    b = iregs[t[2]] if op == O.AND_RR else t[2]
                    r = iregs[t[1]] & b
                    iregs[t[1]] = r
                    flags = (
                        _ZF if r == 0 else (_SF if r < 0 else 0)
                    ) | PARITY_TABLE[r & 255]
                    pc = cur + 1
                elif op == O.OR_RR or op == O.OR_RI:
                    b = iregs[t[2]] if op == O.OR_RR else t[2]
                    r = iregs[t[1]] | b
                    iregs[t[1]] = r
                    flags = (
                        _ZF if r == 0 else (_SF if r < 0 else 0)
                    ) | PARITY_TABLE[r & 255]
                    pc = cur + 1
                elif op == O.XOR_RR or op == O.XOR_RI:
                    b = iregs[t[2]] if op == O.XOR_RR else t[2]
                    r = iregs[t[1]] ^ b
                    iregs[t[1]] = r
                    flags = (
                        _ZF if r == 0 else (_SF if r < 0 else 0)
                    ) | PARITY_TABLE[r & 255]
                    pc = cur + 1
                elif op == O.NEG:
                    r = to_signed64(-iregs[t[1]])
                    iregs[t[1]] = r
                    flags = (
                        _ZF if r == 0 else (_SF if r < 0 else 0)
                    ) | PARITY_TABLE[r & 255]
                    pc = cur + 1
                elif op == O.IDIV_RR or op == O.IDIV_RI:
                    a = iregs[t[1]]
                    b = iregs[t[2]] if op == O.IDIV_RR else t[2]
                    if b == 0 or (a == _INT64_MIN and b == -1):
                        raise DivideByZero(f"{a} idiv {b}", cur)
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    iregs[t[1]] = q
                    flags = (
                        _ZF if q == 0 else (_SF if q < 0 else 0)
                    ) | PARITY_TABLE[q & 255]
                    pc = cur + 1
                elif op == O.IREM_RR or op == O.IREM_RI:
                    a = iregs[t[1]]
                    b = iregs[t[2]] if op == O.IREM_RR else t[2]
                    if b == 0 or (a == _INT64_MIN and b == -1):
                        raise DivideByZero(f"{a} irem {b}", cur)
                    r = abs(a) % abs(b)
                    if a < 0:
                        r = -r
                    iregs[t[1]] = r
                    flags = (
                        _ZF if r == 0 else (_SF if r < 0 else 0)
                    ) | PARITY_TABLE[r & 255]
                    pc = cur + 1
                elif op == O.FCMP:
                    a = fregs[t[1]]
                    b = fregs[t[2]]
                    # ucomisd semantics
                    if a != a or b != b:  # unordered (NaN)
                        flags = _ZF | _PF | _CF
                    elif a == b:
                        flags = _ZF
                    elif a < b:
                        flags = _CF
                    else:
                        flags = 0
                    pc = cur + 1
                elif op == O.SETCC:
                    cc = t[2]
                    if cc == 0:
                        v = bool(flags & _ZF)
                    elif cc == 1:
                        v = not flags & _ZF
                    elif cc == 2:
                        v = bool(flags & _SF) != bool(flags & _OF)
                    elif cc == 3:
                        v = bool(flags & _ZF) or (
                            bool(flags & _SF) != bool(flags & _OF)
                        )
                    elif cc == 4:
                        v = not flags & _ZF and (
                            bool(flags & _SF) == bool(flags & _OF)
                        )
                    elif cc == 5:
                        v = bool(flags & _SF) == bool(flags & _OF)
                    elif cc == 6:
                        v = bool(flags & _CF)
                    elif cc == 7:
                        v = bool(flags & (_CF | _ZF))
                    elif cc == 8:
                        v = not flags & (_CF | _ZF)
                    elif cc == 9:
                        v = not flags & _CF
                    elif cc == 10:
                        v = bool(flags & _SF)
                    elif cc == 11:
                        v = not flags & _SF
                    elif cc == 12:
                        v = bool(flags & _PF)
                    else:
                        v = not flags & _PF
                    iregs[t[1]] = 1 if v else 0
                    pc = cur + 1
                elif op == O.CMOV:
                    cc = t[3]
                    if _cc_holds(cc, flags):
                        iregs[t[1]] = iregs[t[2]]
                    pc = cur + 1
                elif op == O.LEA_RD:
                    iregs[t[1]] = iregs[t[2]] + t[3]
                    pc = cur + 1
                elif op == O.LEA_ABS:
                    iregs[t[1]] = t[2]
                    pc = cur + 1
                elif op == O.LOAD_ABS:
                    addr = t[2]
                    iregs[t[1]] = int.from_bytes(
                        mem[addr : addr + 8], "little", signed=True
                    )
                    pc = cur + 1
                elif op == O.FLOAD_ABS:
                    fregs[t[1]] = _PACK_D.unpack_from(mem, t[2])[0]
                    pc = cur + 1
                elif op == O.STORE_ABS:
                    addr = t[1]
                    mem[addr : addr + 8] = (iregs[t[2]] & MASK64).to_bytes(
                        8, "little"
                    )
                    pc = cur + 1
                elif op == O.STORE_ABS_I:
                    addr = t[1]
                    mem[addr : addr + 8] = (t[2] & MASK64).to_bytes(8, "little")
                    pc = cur + 1
                elif op == O.FSTORE_ABS:
                    _PACK_D.pack_into(mem, t[1], fregs[t[2]])
                    pc = cur + 1
                elif op == O.STORE_RD_I:
                    addr = iregs[t[1]] + t[2]
                    if addr < NULL_GUARD or addr + 8 > mem_size:
                        raise SegmentationFault(f"store to {addr:#x}", cur)
                    mem[addr : addr + 8] = (t[3] & MASK64).to_bytes(8, "little")
                    pc = cur + 1
                elif op == O.PUSH:
                    sp = iregs[RSP_IDX] - 8
                    if sp < stack_limit:
                        raise StackOverflow(f"rsp={sp:#x}", cur)
                    if sp + 8 > mem_size:
                        raise SegmentationFault(f"push to {sp:#x}", cur)
                    iregs[RSP_IDX] = sp
                    mem[sp : sp + 8] = (iregs[t[1]] & MASK64).to_bytes(8, "little")
                    pc = cur + 1
                elif op == O.POP:
                    sp = iregs[RSP_IDX]
                    if sp < NULL_GUARD or sp + 8 > mem_size:
                        raise SegmentationFault(f"pop from {sp:#x}", cur)
                    iregs[t[1]] = int.from_bytes(
                        mem[sp : sp + 8], "little", signed=True
                    )
                    iregs[RSP_IDX] = sp + 8
                    pc = cur + 1
                elif op == O.CALL:
                    sp = iregs[RSP_IDX] - 8
                    if sp < stack_limit:
                        raise StackOverflow(f"rsp={sp:#x}", cur)
                    if sp + 8 > mem_size:
                        raise SegmentationFault(f"call push to {sp:#x}", cur)
                    iregs[RSP_IDX] = sp
                    mem[sp : sp + 8] = ((cur + 1) & MASK64).to_bytes(8, "little")
                    pc = t[1]
                elif op == O.INTR:
                    self._cur_pc = cur
                    self.flags = flags
                    intr_impls[t[1]](self)
                    flags = self.flags
                    pc = cur + 1
                elif op == O.RET:
                    sp = iregs[RSP_IDX]
                    if sp < NULL_GUARD or sp + 8 > mem_size:
                        raise SegmentationFault(f"ret pop from {sp:#x}", cur)
                    ret_pc = int.from_bytes(
                        mem[sp : sp + 8], "little", signed=True
                    )
                    iregs[RSP_IDX] = sp + 8
                    if ret_pc == HALT_PC:
                        counts[cur] += 1
                        steps += 1
                        break
                    if not 0 <= ret_pc < n_code:
                        raise IllegalInstruction(
                            f"ret to {ret_pc:#x}", cur
                        )
                    pc = ret_pc
                elif op == O.CVTSI2SD:
                    fregs[t[1]] = float(iregs[t[2]])
                    pc = cur + 1
                elif op == O.CVTTSD2SI:
                    v = fregs[t[2]]
                    if v != v or v in (math.inf, -math.inf):
                        iregs[t[1]] = _INT64_MIN
                    else:
                        truncated = math.trunc(v)
                        if not _INT64_MIN <= truncated < -_INT64_MIN:
                            iregs[t[1]] = _INT64_MIN
                        else:
                            iregs[t[1]] = truncated
                    pc = cur + 1
                elif op == O.FI_CHECK:
                    refine_count += 1
                    if site_trace is not None:
                        site_trace.append(cur)
                    if (
                        refine_plan is not None
                        and refine_plan.target_index
                        <= refine_count
                        <= refine_plan.last_index
                    ):
                        # Inject into the guarded instruction's outputs
                        # (flags are live here; sync before flipping).  A
                        # dwell window re-applies at every in-window site.
                        self.flags = flags
                        self._apply_fault(
                            refine_plan, cur, t[1], refine_count
                        )
                        flags = self.flags
                    pc = cur + 1
                else:
                    raise IllegalInstruction(f"opcode {op}", cur)

                counts[cur] += 1
                steps += 1
                if steps >= budget:
                    raise ExecutionTimeout(f"budget {budget} exhausted", cur)
                if attached and is_cand[cur]:
                    pin_count += 1
                    if site_trace is not None:
                        site_trace.append(cur)
                    if (
                        pin_plan is not None
                        and pin_plan.target_index
                        <= pin_count
                        <= pin_plan.last_index
                    ):
                        self.flags = flags
                        self._apply_fault(
                            pin_plan, cur, outputs[cur], pin_count
                        )
                        flags = self.flags
                        if pin_count >= pin_plan.last_index:
                            # Detach: instrumentation overhead ends once the
                            # fault's dwell window closes.
                            attached = False
                            self.attached_candidates = pin_count
                            counts = [0] * n_code
                            self.counts = counts
                if steps >= snap_at:
                    # Snapshot boundary: sync loop-local state onto the CPU
                    # (after candidate accounting, so pin_count matches the
                    # executed prefix) and hand a resumable view to the hook.
                    self.steps = steps
                    self.flags = flags
                    self._pin_count = pin_count
                    self._refine_count = refine_count
                    self._attached = attached
                    snap_hook(self, pc)
                    snap_at = steps + snap_every
        finally:
            self.steps = steps
            self.flags = flags
            self._pin_count = pin_count
            self._refine_count = refine_count
            self._attached = attached
            if attached:
                self.attached_candidates = pin_count
                # Never detached: all counts are attached counts.
                if self.counts_attached is not self.counts:
                    self.counts_attached = self.counts


def _cc_holds(cc: int, flags: int) -> bool:
    """Out-of-line condition evaluation for rare opcodes (cmov)."""
    zf = bool(flags & _ZF)
    sf = bool(flags & _SF)
    of = bool(flags & _OF)
    cf = bool(flags & _CF)
    return (
        (cc == 0 and zf)
        or (cc == 1 and not zf)
        or (cc == 2 and sf != of)
        or (cc == 3 and (zf or sf != of))
        or (cc == 4 and not zf and sf == of)
        or (cc == 5 and sf == of)
        or (cc == 6 and cf)
        or (cc == 7 and (cf or zf))
        or (cc == 8 and not cf and not zf)
        or (cc == 9 and not cf)
        or (cc == 10 and sf)
        or (cc == 11 and not sf)
        or (cc == 12 and bool(flags & _PF))
        or (cc == 13 and not flags & _PF)
    )


def execute(
    program: LoadedProgram,
    budget: int | None = None,
) -> ExecutionResult:
    """Convenience: run a program with no fault injection."""
    return CPU(program).run(budget)
