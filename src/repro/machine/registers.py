"""Register-file index maps shared by the loader and the CPU.

The interpreter keeps integer registers in one flat list and float registers
in another; these tables map architectural names to indices.
"""

from __future__ import annotations

#: Integer register file order (index = position).
IREG_NAMES = (
    "rax", "rcx", "rdx", "rbx", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13",
    "rsp", "rbp",
)

#: Float register file order.
FREG_NAMES = tuple(f"xmm{i}" for i in range(16))

IREG_INDEX = {name: i for i, name in enumerate(IREG_NAMES)}
FREG_INDEX = {name: i for i, name in enumerate(FREG_NAMES)}

RSP_IDX = IREG_INDEX["rsp"]
RBP_IDX = IREG_INDEX["rbp"]
RAX_IDX = IREG_INDEX["rax"]
RDI_IDX = IREG_INDEX["rdi"]
RSI_IDX = IREG_INDEX["rsi"]
XMM0_IDX = FREG_INDEX["xmm0"]
XMM1_IDX = FREG_INDEX["xmm1"]

#: Output-register spaces used in fault-target descriptors.
SPACE_INT = 0
SPACE_FLOAT = 1
SPACE_FLAGS = 2

#: FLAGS register effective width for bit flips (x86 status-flag region).
FLAGS_WIDTH = 16


def output_descriptor(reg_name: str) -> tuple[int, int, int]:
    """Map a physical register name to (space, index, bit width)."""
    if reg_name == "flags":
        return (SPACE_FLAGS, 0, FLAGS_WIDTH)
    if reg_name in FREG_INDEX:
        return (SPACE_FLOAT, FREG_INDEX[reg_name], 64)
    return (SPACE_INT, IREG_INDEX[reg_name], 64)
