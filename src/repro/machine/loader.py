"""Loader: turns a :class:`~repro.backend.binary.Binary` into an executable
image for the CPU interpreter.

Responsibilities of a real loader/linker, scaled down:

* lay out globals in the data segment and build the initial memory image,
* flatten functions into one code array and resolve labels/call targets,
* pre-decode every instruction into a dispatch tuple so the interpreter's
  hot loop never inspects operand objects,
* precompute per-instruction fault-injection metadata (candidate flag and
  output-register descriptors) used by PINFI's DBI hook and REFINE's
  ``fi_check`` sites.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import LinkError
from repro.backend.binary import Binary
from repro.backend.mir import FImm, FuncRef, Imm, Label, MachineInstr, Mem, PReg
from repro.backend.target import DEFAULT_COSTS, INTRINSIC_COSTS
from repro.machine import opcodes as O
from repro.machine.intrinsics import INTRINSIC_TABLE
from repro.machine.registers import FREG_INDEX, IREG_INDEX, output_descriptor

#: Memory map constants.
NULL_GUARD = 0x1000
DEFAULT_MEM_SIZE = 1 << 20
STACK_GUARD = 0x1000


@dataclass
class InstrInfo:
    """Provenance of one decoded instruction (for fault logs/debugging)."""

    func: str
    block: str
    index: int
    text: str


@dataclass
class LoadedProgram:
    """A fully decoded, executable program image."""

    binary: Binary
    code: list[tuple] = field(default_factory=list)
    cost: list[float] = field(default_factory=list)
    is_candidate: list[bool] = field(default_factory=list)
    #: per-pc fault-output descriptors ((space, index, width), ...)
    outputs: list[tuple] = field(default_factory=list)
    info: list[InstrInfo] = field(default_factory=list)
    func_entry: dict[str, int] = field(default_factory=dict)
    globals_addr: dict[str, int] = field(default_factory=dict)
    data_image: bytes = b""
    data_end: int = NULL_GUARD
    mem_size: int = DEFAULT_MEM_SIZE
    #: pc values of LLFI injection stubs (for candidate accounting)
    llfi_site_pcs: list[int] = field(default_factory=list)
    #: pc values of REFINE fi_check pseudos
    fi_check_pcs: list[int] = field(default_factory=list)

    @property
    def stack_limit(self) -> int:
        return self.data_end + STACK_GUARD

    @property
    def stack_top(self) -> int:
        return self.mem_size - 16

    def fresh_memory(self) -> bytearray:
        mem = bytearray(self.mem_size)
        mem[NULL_GUARD : NULL_GUARD + len(self.data_image)] = self.data_image
        return mem


class Loader:
    def __init__(self, binary: Binary, mem_size: int = DEFAULT_MEM_SIZE) -> None:
        self.binary = binary
        self.prog = LoadedProgram(binary=binary, mem_size=mem_size)

    # -- data segment ----------------------------------------------------------

    def _layout_globals(self) -> None:
        addr = NULL_GUARD
        chunks: list[bytes] = []
        for g in self.binary.globals.values():
            self.prog.globals_addr[g.name] = addr
            if g.kind == "double":
                data = struct.pack(f"<{g.count}d", *[float(v) for v in g.init])
            else:
                data = struct.pack(f"<{g.count}q", *[int(v) for v in g.init])
            chunks.append(data)
            addr += g.size_bytes
        self.prog.data_image = b"".join(chunks)
        self.prog.data_end = addr
        if addr + STACK_GUARD + 4096 > self.prog.mem_size:
            raise LinkError(
                f"data segment ({addr} bytes) does not fit in "
                f"{self.prog.mem_size}-byte memory"
            )

    # -- code ------------------------------------------------------------

    def load(self) -> LoadedProgram:
        self._layout_globals()

        # Pass 1: assign pc to every instruction; record labels and entries.
        label_pc: dict[tuple[str, str], int] = {}
        pc = 0
        for mf in self.binary.functions.values():
            self.prog.func_entry[mf.name] = pc
            for block in mf.blocks:
                label_pc[(mf.name, block.name)] = pc
                pc += len(block.instructions)

        # Pass 2: decode.
        for mf in self.binary.functions.values():
            for block in mf.blocks:
                for idx, instr in enumerate(block.instructions):
                    self._decode(mf.name, block.name, idx, instr, label_pc)
        return self.prog

    # -- operand helpers ------------------------------------------------------

    def _ireg(self, op) -> int:
        assert isinstance(op, PReg), op
        return IREG_INDEX[op.name]

    def _freg(self, op) -> int:
        assert isinstance(op, PReg), op
        return FREG_INDEX[op.name]

    def _mem(self, op: Mem) -> tuple[bool, int, int]:
        """Return (is_absolute, base_or_addr, disp)."""
        if op.global_name is not None:
            base = self.prog.globals_addr.get(op.global_name)
            if base is None:
                raise LinkError(f"undefined global @{op.global_name}")
            return (True, base + op.disp, 0)
        assert isinstance(op.base, PReg), op
        return (False, IREG_INDEX[op.base.name], op.disp)

    # -- decoding ---------------------------------------------------------

    def _emit(
        self,
        func: str,
        block: str,
        idx: int,
        instr: MachineInstr,
        decoded: tuple,
        cost: float | None = None,
    ) -> int:
        prog = self.prog
        pc = len(prog.code)
        prog.code.append(decoded)
        prog.cost.append(
            cost if cost is not None else DEFAULT_COSTS.cost(instr.opcode)
        )
        prog.is_candidate.append(instr.is_fi_candidate)
        prog.outputs.append(
            tuple(output_descriptor(r) for r in instr.output_registers())
        )
        from repro.backend.asmprinter import format_instr

        prog.info.append(InstrInfo(func, block, idx, format_instr(instr)))
        return pc

    _ALU_RR = {
        "add": O.ADD_RR, "sub": O.SUB_RR, "imul": O.IMUL_RR, "and": O.AND_RR,
        "or": O.OR_RR, "xor": O.XOR_RR, "shl": O.SHL_RR, "sar": O.SAR_RR,
        "idiv": O.IDIV_RR, "irem": O.IREM_RR,
    }
    _ALU_RI = {
        "add": O.ADD_RI, "sub": O.SUB_RI, "imul": O.IMUL_RI, "and": O.AND_RI,
        "or": O.OR_RI, "xor": O.XOR_RI, "shl": O.SHL_RI, "sar": O.SAR_RI,
        "idiv": O.IDIV_RI, "irem": O.IREM_RI,
    }
    _FALU = {"fadd": O.FADD, "fsub": O.FSUB, "fmul": O.FMUL, "fdiv": O.FDIV}

    def _decode(
        self,
        func: str,
        block: str,
        idx: int,
        instr: MachineInstr,
        label_pc: dict[tuple[str, str], int],
    ) -> None:
        op = instr.opcode
        ops = instr.operands
        emit = lambda decoded, cost=None: self._emit(  # noqa: E731
            func, block, idx, instr, decoded, cost
        )

        if op == "mov":
            dst = self._ireg(ops[0])
            if isinstance(ops[1], Imm):
                emit((O.MOV_RI, dst, ops[1].value))
            else:
                emit((O.MOV_RR, dst, self._ireg(ops[1])))
        elif op == "fmov":
            emit((O.FMOV, self._freg(ops[0]), self._freg(ops[1])))
        elif op == "fconst":
            assert isinstance(ops[1], FImm)
            emit((O.FCONST, self._freg(ops[0]), ops[1].value))
        elif op == "lea":
            dst = self._ireg(ops[0])
            absolute, base, disp = self._mem(ops[1])
            if absolute:
                emit((O.LEA_ABS, dst, base))
            else:
                emit((O.LEA_RD, dst, base, disp))
        elif op in ("load", "fload"):
            is_f = op == "fload"
            dst = self._freg(ops[0]) if is_f else self._ireg(ops[0])
            absolute, base, disp = self._mem(ops[1])
            if absolute:
                emit(((O.FLOAD_ABS if is_f else O.LOAD_ABS), dst, base))
            else:
                emit(((O.FLOAD_RD if is_f else O.LOAD_RD), dst, base, disp))
        elif op in ("store", "fstore"):
            is_f = op == "fstore"
            absolute, base, disp = self._mem(ops[0])
            src = ops[1]
            if isinstance(src, Imm):
                if absolute:
                    emit((O.STORE_ABS_I, base, src.value))
                else:
                    emit((O.STORE_RD_I, base, disp, src.value))
            elif is_f:
                if absolute:
                    emit((O.FSTORE_ABS, base, self._freg(src)))
                else:
                    emit((O.FSTORE_RD, base, disp, self._freg(src)))
            else:
                if absolute:
                    emit((O.STORE_ABS, base, self._ireg(src)))
                else:
                    emit((O.STORE_RD, base, disp, self._ireg(src)))
        elif op in self._ALU_RR:
            dst = self._ireg(ops[0])
            if isinstance(ops[1], Imm):
                emit((self._ALU_RI[op], dst, ops[1].value))
            else:
                emit((self._ALU_RR[op], dst, self._ireg(ops[1])))
        elif op == "neg":
            emit((O.NEG, self._ireg(ops[0])))
        elif op in self._FALU:
            emit((self._FALU[op], self._freg(ops[0]), self._freg(ops[1])))
        elif op == "cmp":
            a = self._ireg(ops[0])
            if isinstance(ops[1], Imm):
                emit((O.CMP_RI, a, ops[1].value))
            else:
                emit((O.CMP_RR, a, self._ireg(ops[1])))
        elif op == "fcmp":
            emit((O.FCMP, self._freg(ops[0]), self._freg(ops[1])))
        elif op == "setcc":
            emit((O.SETCC, self._ireg(ops[0]), O.CC_IDS[instr.cc]))
        elif op == "cmov":
            emit((O.CMOV, self._ireg(ops[0]), self._ireg(ops[1]), O.CC_IDS[instr.cc]))
        elif op == "jmp":
            target = ops[0]
            assert isinstance(target, Label)
            emit((O.JMP, label_pc[(func, target.name)]))
        elif op == "jcc":
            target = ops[0]
            assert isinstance(target, Label)
            emit((O.JCC, O.CC_IDS[instr.cc], label_pc[(func, target.name)]))
        elif op == "call":
            target = ops[0]
            assert isinstance(target, FuncRef)
            if target.name in self.prog.func_entry:
                emit((O.CALL, self.prog.func_entry[target.name]))
            else:
                intr_id = INTRINSIC_TABLE.index_of(target.name)
                cost = DEFAULT_COSTS.cost("call") + INTRINSIC_COSTS.get(
                    target.name, 10.0
                )
                pc = emit((O.INTR, intr_id, target.name), cost)
                if target.name.startswith("__fi_inject"):
                    self.prog.llfi_site_pcs.append(pc)
        elif op == "ret":
            emit((O.RET,))
        elif op == "push":
            emit((O.PUSH, self._ireg(ops[0])))
        elif op == "pop":
            emit((O.POP, self._ireg(ops[0])))
        elif op == "cvtsi2sd":
            emit((O.CVTSI2SD, self._freg(ops[0]), self._ireg(ops[1])))
        elif op == "cvttsd2si":
            emit((O.CVTTSD2SI, self._ireg(ops[0]), self._freg(ops[1])))
        elif op == "fi_check":
            # REFINE site: the tuple carries the guarded instruction's
            # fault-output descriptors so injection needs no lookup.
            meta = instr.fi_meta
            outs = tuple(
                output_descriptor(r) for r in getattr(meta, "out_regs", ())
            )
            site_id = getattr(meta, "site_id", -1)
            pc = emit((O.FI_CHECK, outs, site_id))
            guarded = getattr(meta, "guarded_text", "")
            if guarded:
                # Fault logs should name the instruction whose outputs the
                # site corrupts, not the instrumentation pseudo itself.
                self.prog.info[pc].text = guarded
            self.prog.fi_check_pcs.append(pc)
        else:  # pragma: no cover - exhaustive
            raise LinkError(f"cannot decode opcode {op!r}")


def load_binary(binary: Binary, mem_size: int = DEFAULT_MEM_SIZE) -> LoadedProgram:
    """Load and decode a binary for execution."""
    binary.validate()
    return Loader(binary, mem_size).load()
