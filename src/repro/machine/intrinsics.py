"""Runtime intrinsics: the simulated libc/libm plus output channels.

Each intrinsic follows the sx64 ABI: integer args in rdi/rsi/..., float args
in xmm0/xmm1, results in rax/xmm0.  Math functions implement IEEE behaviour
(domain errors produce NaN/inf rather than Python exceptions) because fault
injection routinely feeds them garbage.

The numeric behaviour itself lives in :data:`PURE_MATH` /
:func:`call_math` so the reference IR interpreter
(:mod:`repro.testing.interp`) evaluates intrinsic calls through exactly the
same code path as the machine — the differential oracles rely on the two
execution engines sharing one libm.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.machine.registers import RAX_IDX, RDI_IDX, RSI_IDX, XMM0_IDX, XMM1_IDX


def call_math(name: str, *args: float) -> float:
    """Evaluate a math intrinsic by name with IEEE error behaviour."""
    fn = PURE_MATH[name]
    try:
        return fn(*args)
    except (ValueError, OverflowError, ZeroDivisionError):
        return math.nan


def format_double(value: float) -> str:
    """The ``print_double`` output format (6-significant-digit scientific)."""
    return f"{value:.6e}"


def _unary_math(name: str):
    def impl(cpu) -> None:
        cpu.fregs[XMM0_IDX] = call_math(name, cpu.fregs[XMM0_IDX])

    return impl


def _binary_math(name: str):
    def impl(cpu) -> None:
        cpu.fregs[XMM0_IDX] = call_math(
            name, cpu.fregs[XMM0_IDX], cpu.fregs[XMM1_IDX]
        )

    return impl


def _safe_sqrt(x: float) -> float:
    if math.isnan(x) or x < 0.0:
        return math.nan
    return math.sqrt(x)


def _safe_exp(x: float) -> float:
    if math.isnan(x):
        return math.nan
    if x > 709.0:
        return math.inf
    if x < -745.0:
        return 0.0
    return math.exp(x)


def _safe_log(x: float) -> float:
    if math.isnan(x) or x < 0.0:
        return math.nan
    if x == 0.0:
        return -math.inf
    if math.isinf(x):
        return math.inf
    return math.log(x)


def _safe_trig(fn):
    def impl(x: float) -> float:
        if math.isnan(x) or math.isinf(x):
            return math.nan
        # Huge arguments lose all precision; IEEE still defines a value but
        # Python's libm handles it fine up to ~1e308.
        return fn(x)

    return impl


def _safe_floor(x: float) -> float:
    if math.isnan(x) or math.isinf(x):
        return x
    return float(math.floor(x))


def _safe_pow(x: float, y: float) -> float:
    if math.isnan(x) or math.isnan(y):
        return math.nan
    try:
        result = math.pow(x, y)
    except (ValueError, OverflowError):
        # negative base with non-integer exponent, or overflow
        if abs(x) > 1.0 and y > 0:
            return math.inf
        return math.nan
    return result


def _safe_fmod(x: float, y: float) -> float:
    if math.isnan(x) or math.isnan(y) or y == 0.0 or math.isinf(x):
        return math.nan
    try:
        return math.fmod(x, y)
    except ValueError:
        return math.nan


#: Pure evaluation functions for the math intrinsics (shared with the
#: reference IR interpreter via :func:`call_math`).
PURE_MATH: dict[str, Callable[..., float]] = {
    "sqrt": _safe_sqrt,
    "fabs": abs,
    "exp": _safe_exp,
    "log": _safe_log,
    "sin": _safe_trig(math.sin),
    "cos": _safe_trig(math.cos),
    "floor": _safe_floor,
    "pow": _safe_pow,
    "fmod": _safe_fmod,
}


def _print_int(cpu) -> None:
    cpu.output.append(str(cpu.iregs[RDI_IDX]))


def _print_double(cpu) -> None:
    # Fixed 6-significant-digit scientific format, the way HPC mini-apps
    # print residuals/energies.  Perturbations below the printed precision
    # are therefore *benign* — an important real-world masking effect.
    cpu.output.append(format_double(cpu.fregs[XMM0_IDX]))


def _llfi_inject_i64(cpu) -> None:
    """LLFI ``injectFault`` stub for integer values.

    ABI: rdi = site id, rsi = value; returns (possibly corrupted) value in
    rax.  The actual decision logic lives in the CPU's FI controller.
    """
    value = cpu.iregs[RSI_IDX]
    cpu.iregs[RAX_IDX] = cpu.llfi_visit_int(value, 64)


def _llfi_inject_i1(cpu) -> None:
    """LLFI stub for i1 (compare-result) values: a 1-bit flip target."""
    value = cpu.iregs[RSI_IDX]
    cpu.iregs[RAX_IDX] = cpu.llfi_visit_int(value, 1)


def _llfi_inject_f64(cpu) -> None:
    """LLFI ``injectFault`` stub for float values (rdi = site id, xmm0 =
    value; result in xmm0)."""
    value = cpu.fregs[XMM0_IDX]
    cpu.fregs[XMM0_IDX] = cpu.llfi_visit_float(value)


class IntrinsicTable:
    """Stable name -> (id, implementation) mapping used by the loader."""

    def __init__(self) -> None:
        self.names: list[str] = []
        self.impls: list[Callable] = []
        self._index: dict[str, int] = {}

    def register(self, name: str, impl: Callable) -> None:
        self._index[name] = len(self.names)
        self.names.append(name)
        self.impls.append(impl)

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            from repro.errors import LinkError

            raise LinkError(f"unknown intrinsic @{name}") from None


#: Binary (two-argument) math intrinsics; the rest of PURE_MATH is unary.
BINARY_MATH = frozenset({"pow", "fmod"})

INTRINSIC_TABLE = IntrinsicTable()
INTRINSIC_TABLE.register("print_int", _print_int)
INTRINSIC_TABLE.register("print_double", _print_double)
for _name in PURE_MATH:
    INTRINSIC_TABLE.register(
        _name,
        _binary_math(_name) if _name in BINARY_MATH else _unary_math(_name),
    )
INTRINSIC_TABLE.register("__fi_inject_i64", _llfi_inject_i64)
INTRINSIC_TABLE.register("__fi_inject_f64", _llfi_inject_f64)
INTRINSIC_TABLE.register("__fi_inject_i1", _llfi_inject_i1)
