"""Runtime intrinsics: the simulated libc/libm plus output channels.

Each intrinsic follows the sx64 ABI: integer args in rdi/rsi/..., float args
in xmm0/xmm1, results in rax/xmm0.  Math functions implement IEEE behaviour
(domain errors produce NaN/inf rather than Python exceptions) because fault
injection routinely feeds them garbage.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.machine.registers import RAX_IDX, RDI_IDX, RSI_IDX, XMM0_IDX, XMM1_IDX


def _unary_math(fn: Callable[[float], float]):
    def impl(cpu) -> None:
        x = cpu.fregs[XMM0_IDX]
        try:
            result = fn(x)
        except (ValueError, OverflowError):
            result = math.nan
        cpu.fregs[XMM0_IDX] = result

    return impl


def _binary_math(fn: Callable[[float, float], float]):
    def impl(cpu) -> None:
        x = cpu.fregs[XMM0_IDX]
        y = cpu.fregs[XMM1_IDX]
        try:
            result = fn(x, y)
        except (ValueError, OverflowError, ZeroDivisionError):
            result = math.nan
        cpu.fregs[XMM0_IDX] = result

    return impl


def _safe_sqrt(x: float) -> float:
    if math.isnan(x) or x < 0.0:
        return math.nan
    return math.sqrt(x)


def _safe_exp(x: float) -> float:
    if math.isnan(x):
        return math.nan
    if x > 709.0:
        return math.inf
    if x < -745.0:
        return 0.0
    return math.exp(x)


def _safe_log(x: float) -> float:
    if math.isnan(x) or x < 0.0:
        return math.nan
    if x == 0.0:
        return -math.inf
    if math.isinf(x):
        return math.inf
    return math.log(x)


def _safe_trig(fn):
    def impl(x: float) -> float:
        if math.isnan(x) or math.isinf(x):
            return math.nan
        # Huge arguments lose all precision; IEEE still defines a value but
        # Python's libm handles it fine up to ~1e308.
        return fn(x)

    return impl


def _safe_floor(x: float) -> float:
    if math.isnan(x) or math.isinf(x):
        return x
    return float(math.floor(x))


def _safe_pow(x: float, y: float) -> float:
    if math.isnan(x) or math.isnan(y):
        return math.nan
    try:
        result = math.pow(x, y)
    except (ValueError, OverflowError):
        # negative base with non-integer exponent, or overflow
        if abs(x) > 1.0 and y > 0:
            return math.inf
        return math.nan
    return result


def _safe_fmod(x: float, y: float) -> float:
    if math.isnan(x) or math.isnan(y) or y == 0.0 or math.isinf(x):
        return math.nan
    try:
        return math.fmod(x, y)
    except ValueError:
        return math.nan


def _print_int(cpu) -> None:
    cpu.output.append(str(cpu.iregs[RDI_IDX]))


def _print_double(cpu) -> None:
    # Fixed 6-significant-digit scientific format, the way HPC mini-apps
    # print residuals/energies.  Perturbations below the printed precision
    # are therefore *benign* — an important real-world masking effect.
    value = cpu.fregs[XMM0_IDX]
    cpu.output.append(f"{value:.6e}")


def _llfi_inject_i64(cpu) -> None:
    """LLFI ``injectFault`` stub for integer values.

    ABI: rdi = site id, rsi = value; returns (possibly corrupted) value in
    rax.  The actual decision logic lives in the CPU's FI controller.
    """
    value = cpu.iregs[RSI_IDX]
    cpu.iregs[RAX_IDX] = cpu.llfi_visit_int(value, 64)


def _llfi_inject_i1(cpu) -> None:
    """LLFI stub for i1 (compare-result) values: a 1-bit flip target."""
    value = cpu.iregs[RSI_IDX]
    cpu.iregs[RAX_IDX] = cpu.llfi_visit_int(value, 1)


def _llfi_inject_f64(cpu) -> None:
    """LLFI ``injectFault`` stub for float values (rdi = site id, xmm0 =
    value; result in xmm0)."""
    value = cpu.fregs[XMM0_IDX]
    cpu.fregs[XMM0_IDX] = cpu.llfi_visit_float(value)


class IntrinsicTable:
    """Stable name -> (id, implementation) mapping used by the loader."""

    def __init__(self) -> None:
        self.names: list[str] = []
        self.impls: list[Callable] = []
        self._index: dict[str, int] = {}

    def register(self, name: str, impl: Callable) -> None:
        self._index[name] = len(self.names)
        self.names.append(name)
        self.impls.append(impl)

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            from repro.errors import LinkError

            raise LinkError(f"unknown intrinsic @{name}") from None


INTRINSIC_TABLE = IntrinsicTable()
INTRINSIC_TABLE.register("print_int", _print_int)
INTRINSIC_TABLE.register("print_double", _print_double)
INTRINSIC_TABLE.register("sqrt", _unary_math(_safe_sqrt))
INTRINSIC_TABLE.register("fabs", _unary_math(abs))
INTRINSIC_TABLE.register("exp", _unary_math(_safe_exp))
INTRINSIC_TABLE.register("log", _unary_math(_safe_log))
INTRINSIC_TABLE.register("sin", _unary_math(_safe_trig(math.sin)))
INTRINSIC_TABLE.register("cos", _unary_math(_safe_trig(math.cos)))
INTRINSIC_TABLE.register("floor", _unary_math(_safe_floor))
INTRINSIC_TABLE.register("pow", _binary_math(_safe_pow))
INTRINSIC_TABLE.register("fmod", _binary_math(_safe_fmod))
INTRINSIC_TABLE.register("__fi_inject_i64", _llfi_inject_i64)
INTRINSIC_TABLE.register("__fi_inject_f64", _llfi_inject_f64)
INTRINSIC_TABLE.register("__fi_inject_i1", _llfi_inject_i1)
