"""Shared low-level helpers: bit manipulation, IEEE-754 views, RNG streams."""

from repro.utils.bits import (
    MASK64,
    bit_width,
    flip_bit,
    sign_extend,
    to_signed64,
    to_unsigned64,
)
from repro.utils.ieee754 import (
    bits_to_double,
    double_to_bits,
    flip_double_bit,
)
from repro.utils.rng import SplitMix64, derive_seed

__all__ = [
    "MASK64",
    "bit_width",
    "flip_bit",
    "sign_extend",
    "to_signed64",
    "to_unsigned64",
    "bits_to_double",
    "double_to_bits",
    "flip_double_bit",
    "SplitMix64",
    "derive_seed",
]
