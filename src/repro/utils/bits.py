"""Two's-complement 64-bit integer helpers.

The simulated machine stores general-purpose registers as *signed* Python
integers constrained to the 64-bit two's-complement range.  These helpers
convert between signed and unsigned views and implement the single-bit upset
used by the fault model.
"""

from __future__ import annotations

#: Mask selecting the low 64 bits of an integer.
MASK64 = (1 << 64) - 1

#: Smallest / largest representable signed 64-bit values.
INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1


def to_unsigned64(value: int) -> int:
    """Return the unsigned 64-bit view of ``value`` (any Python int)."""
    return value & MASK64


def to_signed64(value: int) -> int:
    """Return the signed two's-complement interpretation of ``value``."""
    value &= MASK64
    if value > INT64_MAX:
        value -= 1 << 64
    return value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value`` to a signed integer."""
    if bits <= 0:
        raise ValueError("bit count must be positive")
    value &= (1 << bits) - 1
    sign = 1 << (bits - 1)
    return (value ^ sign) - sign


def flip_bit(value: int, bit: int, width: int = 64) -> int:
    """Flip bit ``bit`` of the ``width``-bit two's-complement ``value``.

    The result is returned as a *signed* integer of the same width, matching
    how the simulated machine stores register contents.  Flipping is an
    involution: ``flip_bit(flip_bit(v, b), b) == v``.
    """
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} out of range for width {width}")
    flipped = (value & ((1 << width) - 1)) ^ (1 << bit)
    return sign_extend(flipped, width)


def bit_width(value: int) -> int:
    """Number of bits needed to represent the unsigned view of ``value``."""
    return to_unsigned64(value).bit_length()
