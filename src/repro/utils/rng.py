"""Deterministic random streams for fault-injection experiments.

Every FI experiment must be a pure function of ``(workload, tool, seed)`` so
that fault logs can be replayed bit-for-bit.  We use SplitMix64 — a tiny,
well-studied generator with a one-word state — rather than :mod:`random` so
the stream is stable across Python versions and trivially portable, mirroring
how the paper's injection library is a small self-contained C file.
"""

from __future__ import annotations

from repro.utils.bits import MASK64

_GAMMA = 0x9E3779B97F4A7C15


class SplitMix64:
    """SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014)."""

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned pseudo-random value."""
        self._state = (self._state + _GAMMA) & MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
        return z ^ (z >> 31)

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)`` via rejection sampling (unbiased)."""
        if n <= 0:
            raise ValueError("randrange() bound must be positive")
        # Rejection threshold: largest multiple of n that fits in 2**64.
        limit = (1 << 64) - ((1 << 64) % n)
        while True:
            value = self.next_u64()
            if value < limit:
                return value % n

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of entropy."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))


def derive_seed(base_seed: int, *components: int | str) -> int:
    """Derive a child seed from a base seed and a path of components.

    Used to give each (workload, tool, experiment-index) its own independent
    stream, so adding experiments never perturbs existing ones.
    """
    h = base_seed & MASK64
    for comp in components:
        if isinstance(comp, str):
            # FNV-1a over the UTF-8 bytes keeps string components stable.
            part = 0xCBF29CE484222325
            for byte in comp.encode("utf-8"):
                part = ((part ^ byte) * 0x100000001B3) & MASK64
        else:
            part = comp & MASK64
        h ^= part
        # One SplitMix64 scramble round mixes the component in thoroughly.
        h = (h + _GAMMA) & MASK64
        z = h
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
        h = z ^ (z >> 31)
    return h
