"""IEEE-754 double-precision bit views.

The fault model flips bits in *architectural registers*.  For floating-point
registers that means flipping a bit of the IEEE-754 binary64 encoding, not a
numerical perturbation.  These helpers give a bit-accurate round trip between
Python floats and their 64-bit encodings using :mod:`struct`.
"""

from __future__ import annotations

import struct

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")


def double_to_bits(value: float) -> int:
    """Return the 64-bit IEEE-754 encoding of ``value`` as an unsigned int."""
    return _PACK_Q.unpack(_PACK_D.pack(value))[0]


def bits_to_double(bits: int) -> float:
    """Decode an unsigned 64-bit integer as an IEEE-754 double."""
    return _PACK_D.unpack(_PACK_Q.pack(bits & ((1 << 64) - 1)))[0]


def flip_double_bit(value: float, bit: int) -> float:
    """Flip bit ``bit`` (0 = LSB of mantissa, 63 = sign) of a double.

    Flipping high exponent bits can produce infinities or NaNs — exactly the
    behaviour a register upset has on real hardware, and an important source
    of silent output corruption and crashes in FI studies.
    """
    if not 0 <= bit < 64:
        raise ValueError(f"bit {bit} out of range for binary64")
    return bits_to_double(double_to_bits(value) ^ (1 << bit))
