"""IR optimization passes and pipelines (O0/O1/O2)."""

from repro.irpasses.base import (
    FunctionPass,
    PassManager,
    build_pipeline,
    optimize_module,
)
from repro.irpasses.constfold import ConstantFold, c_sdiv, c_srem
from repro.irpasses.cse import CommonSubexprElim
from repro.irpasses.dce import DeadCodeElim
from repro.irpasses.instcombine import InstCombine
from repro.irpasses.licm import LoopInvariantCodeMotion, NaturalLoop, find_loops
from repro.irpasses.mem2reg import PromoteMemToReg
from repro.irpasses.simplifycfg import SimplifyCFG

__all__ = [
    "FunctionPass",
    "PassManager",
    "build_pipeline",
    "optimize_module",
    "ConstantFold",
    "c_sdiv",
    "c_srem",
    "CommonSubexprElim",
    "DeadCodeElim",
    "InstCombine",
    "LoopInvariantCodeMotion",
    "NaturalLoop",
    "find_loops",
    "PromoteMemToReg",
    "SimplifyCFG",
]
