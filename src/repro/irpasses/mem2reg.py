"""SSA construction: promote scalar allocas to registers (mem2reg).

Classic Cytron-style algorithm: place phi nodes at the iterated dominance
frontier of every store, then rename along the dominator tree.  Only allocas
of scalar type whose address never escapes (used solely by direct loads and
stores) are promotable — arrays and address-taken slots stay in memory,
exactly like LLVM.
"""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.dominators import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import Alloca, Load, Phi, Store
from repro.ir.values import ConstantFloat, ConstantInt, Value
from repro.irpasses.base import FunctionPass


def _promotable_allocas(fn: Function) -> list[Alloca]:
    result = []
    for instr in fn.instructions():
        if not isinstance(instr, Alloca):
            continue
        if not instr.allocated_type.is_scalar():
            continue
        ok = True
        for user in instr.users:
            if isinstance(user, Load):
                continue
            if isinstance(user, Store) and user.ptr is instr and user.value is not instr:
                continue
            ok = False
            break
        if ok:
            result.append(instr)
    return result


def _default_value(alloca: Alloca) -> Value:
    """Value of a promoted slot before any store (load-before-store reads 0)."""
    ty = alloca.allocated_type
    if ty.is_float():
        return ConstantFloat(0.0)
    if ty.is_pointer():
        # A never-initialized pointer slot: model as integer zero is not
        # type-correct, so synthesize a null-like constant via ConstantInt is
        # impossible; instead keep such allocas unpromoted.
        raise _Unpromotable()
    return ConstantInt(0, ty)


class _Unpromotable(Exception):
    pass


class PromoteMemToReg(FunctionPass):
    """The mem2reg pass."""

    name = "mem2reg"

    def run(self, fn: Function) -> bool:
        allocas = _promotable_allocas(fn)
        if not allocas:
            return False
        dt = DominatorTree(fn)
        changed = False
        for alloca in allocas:
            try:
                self._promote(fn, dt, alloca)
                changed = True
            except _Unpromotable:
                continue
        return changed

    def _promote(self, fn: Function, dt: DominatorTree, alloca: Alloca) -> None:
        loads = [u for u in alloca.users if isinstance(u, Load)]
        stores = [u for u in alloca.users if isinstance(u, Store)]

        # Fast path: no stores at all -> every load reads the default value.
        if not stores:
            default = _default_value(alloca)
            for ld in loads:
                ld.replace_all_uses_with(default)
                ld.erase()
            alloca.erase()
            return

        # Fast path: a single store that dominates every load.
        if len(stores) == 1:
            st = stores[0]
            st_block = st.parent
            assert st_block is not None
            st_idx = st_block.instructions.index(st)
            if all(
                self._dominates_use(dt, st_block, st_idx, ld) for ld in loads
            ):
                value = st.value
                for ld in loads:
                    ld.replace_all_uses_with(value)
                    ld.erase()
                st.erase()
                alloca.erase()
                return

        # General case: phi placement at iterated dominance frontiers.
        def_blocks = {st.parent for st in stores if st.parent is not None}
        phi_blocks: set[BasicBlock] = set()
        work = list(def_blocks)
        while work:
            block = work.pop()
            if not dt.reachable(block):
                continue
            for frontier in dt.frontiers.get(block, ()):
                if frontier not in phi_blocks:
                    phi_blocks.add(frontier)
                    work.append(frontier)

        phis: dict[BasicBlock, Phi] = {}
        for block in phi_blocks:
            phi = Phi(alloca.allocated_type)
            phi.name = fn.next_name(alloca.name or "mem")
            block.insert(len(block.phis()), phi)
            phi.parent = block
            phis[block] = phi

        default = _default_value(alloca)

        # Renaming walk over the dominator tree (iterative: dominator trees
        # of deep loop nests would overflow Python's recursion limit).
        work2: list[tuple[BasicBlock, Value]] = [(fn.entry, default)]
        while work2:
            block, incoming = work2.pop()
            current = incoming
            if block in phis:
                current = phis[block]
            for instr in list(block.instructions):
                if isinstance(instr, Load) and instr.ptr is alloca:
                    instr.replace_all_uses_with(current)
                    instr.erase()
                elif isinstance(instr, Store) and instr.ptr is alloca:
                    current = instr.value
                    instr.erase()
            for succ in block.successors():
                if succ in phis:
                    phis[succ].add_incoming(current, block)
            for child in dt.children.get(block, ()):
                work2.append((child, current))

        # Phi nodes in unreachable-from-stores paths may have missing incoming
        # edges if a predecessor is unreachable; the verifier requires exact
        # correspondence, so fill any gaps with the default value.
        for block, phi in phis.items():
            preds = block.predecessors()
            have = {id(b) for b in phi.incoming_blocks}
            for pred in preds:
                if id(pred) not in have:
                    phi.add_incoming(default, pred)

        # The renaming walk only visits the dominator tree, so accesses in
        # unreachable blocks survive it; rewrite them here (a load from a
        # slot that no reachable store reaches sees the default value) or
        # erasing the alloca below would fail on the leftover uses.
        for user in list(alloca.users):
            if user.parent is not None and not dt.reachable(user.parent):
                if isinstance(user, Load):
                    user.replace_all_uses_with(default)
                user.erase()

        # Dead phis (no loads reached them) are left for DCE to clean up.
        alloca.erase()

    @staticmethod
    def _dominates_use(
        dt: DominatorTree, st_block: BasicBlock, st_idx: int, load: Load
    ) -> bool:
        ld_block = load.parent
        assert ld_block is not None
        if ld_block is st_block:
            return ld_block.instructions.index(load) > st_idx
        return dt.strictly_dominates(st_block, ld_block) or (
            dt.dominates(st_block, ld_block) and st_block is not ld_block
        )
