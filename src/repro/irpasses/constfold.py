"""Constant folding with C evaluation semantics.

Integer division truncates toward zero and remainder takes the dividend's
sign (C99), unlike Python's floor semantics — the VM implements the same
rules, so folding is observation-equivalent.  Folds that would trap at
runtime (division by zero) or overflow (``INT64_MIN / -1``) are left alone.
"""

from __future__ import annotations

import math

from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Cast,
    FCmp,
    ICmp,
    Select,
)
from repro.ir.types import I1, I64
from repro.ir.values import ConstantFloat, ConstantInt, Value
from repro.irpasses.base import FunctionPass
from repro.utils.bits import INT64_MAX, INT64_MIN, to_signed64


def c_sdiv(a: int, b: int) -> int:
    """C99 signed division: truncation toward zero, 64-bit wrap."""
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return to_signed64(q)


def c_srem(a: int, b: int) -> int:
    """C99 signed remainder: sign follows the dividend."""
    r = abs(a) % abs(b)
    if a < 0:
        r = -r
    return to_signed64(r)


def eval_int_binop(opcode: str, a: int, b: int) -> int | None:
    """Evaluate an i64 binop; None when the fold must be skipped."""
    if opcode == "add":
        return to_signed64(a + b)
    if opcode == "sub":
        return to_signed64(a - b)
    if opcode == "mul":
        return to_signed64(a * b)
    if opcode == "sdiv":
        if b == 0 or (a == INT64_MIN and b == -1):
            return None
        return c_sdiv(a, b)
    if opcode == "srem":
        if b == 0 or (a == INT64_MIN and b == -1):
            return None
        return c_srem(a, b)
    if opcode == "and":
        return to_signed64(a & b)
    if opcode == "or":
        return to_signed64(a | b)
    if opcode == "xor":
        return to_signed64(a ^ b)
    if opcode == "shl":
        if not 0 <= b < 64:
            return None
        return to_signed64(a << b)
    if opcode == "ashr":
        if not 0 <= b < 64:
            return None
        return to_signed64(a >> b)
    return None


def eval_float_binop(opcode: str, a: float, b: float) -> float | None:
    """Evaluate an f64 binop with IEEE semantics (inf/nan propagate)."""
    try:
        if opcode == "fadd":
            return a + b
        if opcode == "fsub":
            return a - b
        if opcode == "fmul":
            return a * b
        if opcode == "fdiv":
            if b == 0.0:
                # IEEE: x/0 = +-inf, 0/0 = nan; Python raises instead.
                if a == 0.0 or math.isnan(a):
                    return math.nan
                return math.copysign(math.inf, a) * math.copysign(1.0, b)
            return a / b
    except OverflowError:
        return math.inf
    return None


_ICMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}

_FCMP = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b and not (math.isnan(a) or math.isnan(b)),
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}


class ConstantFold(FunctionPass):
    """Fold instructions whose operands are all constants."""

    name = "constfold"

    def run(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            for instr in list(block.instructions):
                replacement = self._fold(instr)
                if replacement is not None:
                    instr.replace_all_uses_with(replacement)
                    if instr.num_uses == 0:
                        instr.erase()
                    changed = True
        return changed

    @staticmethod
    def _fold(instr) -> Value | None:
        if isinstance(instr, BinaryOp):
            lhs, rhs = instr.operands
            if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
                value = eval_int_binop(instr.opcode, lhs.value, rhs.value)
                if value is not None:
                    return ConstantInt(value, I64)
            if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
                value = eval_float_binop(instr.opcode, lhs.value, rhs.value)
                if value is not None:
                    return ConstantFloat(value)
            return None
        if isinstance(instr, ICmp):
            lhs, rhs = instr.operands
            if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
                return ConstantInt(int(_ICMP[instr.pred](lhs.value, rhs.value)), I1)
            return None
        if isinstance(instr, FCmp):
            lhs, rhs = instr.operands
            if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
                return ConstantInt(int(_FCMP[instr.pred](lhs.value, rhs.value)), I1)
            return None
        if isinstance(instr, Cast):
            src = instr.operands[0]
            if instr.opcode == "sitofp" and isinstance(src, ConstantInt):
                return ConstantFloat(float(src.value))
            if instr.opcode == "fptosi" and isinstance(src, ConstantFloat):
                v = src.value
                if math.isnan(v) or math.isinf(v):
                    return None
                t = math.trunc(v)
                if not INT64_MIN <= t <= INT64_MAX:
                    return None
                return ConstantInt(t, I64)
            if instr.opcode == "zext" and isinstance(src, ConstantInt):
                return ConstantInt(src.value & 1, I64)
            return None
        if isinstance(instr, Select):
            cond, t, f = instr.operands
            if isinstance(cond, ConstantInt):
                return t if cond.value else f
            if t is f:
                return t
            return None
        return None
