"""Dead code elimination (mark and sweep).

Roots are instructions with side effects (stores, calls, terminators); every
instruction transitively feeding a root is live, everything else is erased.
Mark-and-sweep handles cyclic dead code — e.g. a pair of phis produced by
mem2reg for a variable that is updated in a loop but never read — which a
naive "no uses" scan would miss.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.irpasses.base import FunctionPass


class DeadCodeElim(FunctionPass):
    """Erase every instruction that no side-effecting instruction depends on."""

    name = "dce"

    def run(self, fn: Function) -> bool:
        live: set[int] = set()
        work: list[Instruction] = []
        for block in fn.blocks:
            for instr in block.instructions:
                if instr.has_side_effects:
                    live.add(id(instr))
                    work.append(instr)
        while work:
            instr = work.pop()
            for op in instr.operands:
                if isinstance(op, Instruction) and id(op) not in live:
                    live.add(id(op))
                    work.append(op)

        changed = False
        for block in fn.blocks:
            for instr in list(block.instructions):
                if id(instr) not in live:
                    instr.drop_operands()
                    block.remove(instr)
                    changed = True
        return changed
