"""Common subexpression elimination, dominator-scoped.

Walks the dominator tree with a scoped hash table (like LLVM's EarlyCSE):
a pure instruction whose (opcode, operands) key was already computed in a
dominating position is replaced by the earlier value.  Commutative operators
are canonicalized by operand identity so ``a+b`` and ``b+a`` unify.

Loads are value-numbered too, but the load table is invalidated by any store
or call (a conservative, alias-free memory model).
"""

from __future__ import annotations

from repro.ir.dominators import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Cast,
    COMMUTATIVE_OPS,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Select,
)
from repro.ir.values import ConstantFloat, ConstantInt, Value
from repro.irpasses.base import FunctionPass


def _operand_key(value: Value) -> object:
    if isinstance(value, ConstantInt):
        return ("ci", value.value, value.type.bits)  # type: ignore[attr-defined]
    if isinstance(value, ConstantFloat):
        # repr distinguishes -0.0/0.0 and NaN payloads encode equal; fine.
        return ("cf", repr(value.value))
    return id(value)


def _expr_key(instr: Instruction) -> tuple | None:
    """Hashable value-number key for pure instructions; None if not CSE-able."""
    if isinstance(instr, BinaryOp):
        a, b = (_operand_key(o) for o in instr.operands)
        if instr.opcode in COMMUTATIVE_OPS:
            a, b = sorted((a, b), key=repr)
        return ("bin", instr.opcode, a, b)
    if isinstance(instr, (ICmp, FCmp)):
        return (
            "cmp",
            instr.opcode,
            instr.pred,
            _operand_key(instr.operands[0]),
            _operand_key(instr.operands[1]),
        )
    if isinstance(instr, Cast):
        return ("cast", instr.opcode, _operand_key(instr.operands[0]))
    if isinstance(instr, GetElementPtr):
        return (
            "gep",
            _operand_key(instr.operands[0]),
            _operand_key(instr.operands[1]),
        )
    if isinstance(instr, Select):
        return ("sel", tuple(_operand_key(o) for o in instr.operands))
    return None


class CommonSubexprElim(FunctionPass):
    """Dominator-tree-scoped CSE with conservative load value numbering."""

    name = "cse"

    def run(self, fn: Function) -> bool:
        dt = DominatorTree(fn)
        changed = False

        # Scoped tables: chained dicts along the dominator tree.
        def process(block, expr_scope: dict, load_scope: dict) -> bool:
            local_changed = False
            exprs = dict(expr_scope)
            loads = dict(load_scope)
            for instr in list(block.instructions):
                if isinstance(instr, Load):
                    key = ("load", _operand_key(instr.ptr))
                    prev = loads.get(key)
                    if prev is not None:
                        instr.replace_all_uses_with(prev)
                        instr.erase()
                        local_changed = True
                    else:
                        loads[key] = instr
                    continue
                if instr.opcode == "store":
                    # Conservative: any store may alias any load.
                    loads.clear()
                    # A load of the stored pointer now sees the stored value.
                    loads[("load", _operand_key(instr.operands[1]))] = (
                        instr.operands[0]
                    )
                    continue
                if instr.opcode == "call":
                    loads.clear()
                    continue
                key = _expr_key(instr)
                if key is None:
                    continue
                prev = exprs.get(key)
                if prev is not None:
                    instr.replace_all_uses_with(prev)
                    instr.erase()
                    local_changed = True
                else:
                    exprs[key] = instr
            for child in dt.children.get(block, ()):
                # Memory state is path-sensitive: children begin from this
                # block's table only if this block dominates them (it does,
                # by construction), but stores on other paths into the child
                # can invalidate loads.  A child with multiple predecessors
                # may be reached along paths that bypass this block's tail,
                # so only expression values (pure, path-insensitive) flow
                # down; load availability flows only to sole-successor
                # children whose unique predecessor is this block.
                preds = child.predecessors()
                if len(preds) == 1 and preds[0] is block:
                    child_loads = loads
                else:
                    child_loads = {}
                if process(child, exprs, child_loads):
                    local_changed = True
            return local_changed

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000))
        try:
            changed = process(fn.entry, {}, {})
        finally:
            sys.setrecursionlimit(old_limit)
        return changed
