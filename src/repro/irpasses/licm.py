"""Loop-invariant code motion.

Finds natural loops via back edges in the dominator tree, ensures each loop
has a preheader, and hoists pure instructions whose operands are defined
outside the loop.  Division is not hoisted unless provably non-trapping
(constant non-zero divisor) because hoisting could introduce a trap on an
iteration-count-zero path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.basicblock import BasicBlock
from repro.ir.dominators import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Phi,
    Select,
)
from repro.ir.values import ConstantInt
from repro.irpasses.base import FunctionPass

_HOISTABLE = (BinaryOp, ICmp, FCmp, Cast, GetElementPtr, Select)


@dataclass
class NaturalLoop:
    """A natural loop: header plus body blocks (header included)."""

    header: BasicBlock
    blocks: set = field(default_factory=set)
    latches: list = field(default_factory=list)


def find_loops(fn: Function, dt: DominatorTree | None = None) -> list[NaturalLoop]:
    """Discover natural loops from back edges (``latch -> header`` where the
    header dominates the latch)."""
    dt = dt or DominatorTree(fn)
    loops: dict[int, NaturalLoop] = {}
    for block in fn.blocks:
        if not dt.reachable(block):
            continue
        for succ in block.successors():
            if dt.dominates(succ, block):
                loop = loops.get(id(succ))
                if loop is None:
                    loop = NaturalLoop(header=succ, blocks={id(succ)})
                    loops[id(succ)] = loop
                loop.latches.append(block)
                # Walk predecessors from the latch up to the header.
                work = [block]
                while work:
                    b = work.pop()
                    if id(b) in loop.blocks:
                        continue
                    loop.blocks.add(id(b))
                    for pred in b.predecessors():
                        if dt.reachable(pred):
                            work.append(pred)
    return list(loops.values())


class LoopInvariantCodeMotion(FunctionPass):
    """Hoist loop-invariant pure instructions to loop preheaders."""

    name = "licm"

    def run(self, fn: Function) -> bool:
        dt = DominatorTree(fn)
        loops = find_loops(fn, dt)
        if not loops:
            return False
        changed = False
        for loop in loops:
            preheader = self._get_or_create_preheader(fn, loop)
            if preheader is None:
                continue
            if self._hoist(fn, loop, preheader):
                changed = True
        return changed

    # -- preheader ----------------------------------------------------------

    @staticmethod
    def _get_or_create_preheader(fn: Function, loop: NaturalLoop) -> BasicBlock | None:
        header = loop.header
        outside_preds = [
            p for p in header.predecessors() if id(p) not in loop.blocks
        ]
        if not outside_preds:
            return None
        if len(outside_preds) == 1:
            pred = outside_preds[0]
            term = pred.terminator
            if isinstance(term, Branch):
                return pred  # already a dedicated preheader
        # Create a fresh preheader and route all outside edges through it.
        pre = fn.add_block(fn.next_name("preheader"), before=header)
        pre.append(Branch(header))
        for pred in outside_preds:
            term = pred.terminator
            assert term is not None
            term.replace_successor(header, pre)  # type: ignore[attr-defined]
        # Split header phis: incoming values from outside move to a new phi
        # in the preheader (or a single direct value when one outside pred).
        for phi in header.phis():
            outside_pairs = [
                (v, b) for v, b in phi.incoming() if id(b) not in loop.blocks
            ]
            if not outside_pairs:
                continue
            if len(outside_pairs) == 1:
                value, block = outside_pairs[0]
                phi.remove_incoming(block)
                phi.add_incoming(value, pre)
            else:
                merged = Phi(phi.type)
                merged.name = fn.next_name("pre")
                pre.insert(len(pre.phis()), merged)
                merged.parent = pre
                for value, block in outside_pairs:
                    phi.remove_incoming(block)
                    merged.add_incoming(value, block)
                phi.add_incoming(merged, pre)
        return pre

    # -- hoisting ------------------------------------------------------------

    def _hoist(self, fn: Function, loop: NaturalLoop, preheader: BasicBlock) -> bool:
        loop_instrs: set[int] = set()
        blocks = [b for b in fn.blocks if id(b) in loop.blocks]
        for block in blocks:
            for instr in block.instructions:
                loop_instrs.add(id(instr))

        changed = False
        progress = True
        while progress:
            progress = False
            for block in blocks:
                for instr in list(block.instructions):
                    if id(instr) not in loop_instrs:
                        continue
                    if not isinstance(instr, _HOISTABLE):
                        continue
                    if not self._is_invariant(instr, loop_instrs):
                        continue
                    if not self._safe_to_speculate(instr):
                        continue
                    block.remove(instr)
                    preheader.insert_before_terminator(instr)
                    loop_instrs.discard(id(instr))
                    progress = True
                    changed = True
        return changed

    @staticmethod
    def _is_invariant(instr: Instruction, loop_instrs: set[int]) -> bool:
        return all(
            not isinstance(op, Instruction) or id(op) not in loop_instrs
            for op in instr.operands
        )

    @staticmethod
    def _safe_to_speculate(instr: Instruction) -> bool:
        if instr.opcode in ("sdiv", "srem"):
            divisor = instr.operands[1]
            return isinstance(divisor, ConstantInt) and divisor.value != 0
        return True
