"""Pass infrastructure: FunctionPass base class and the PassManager.

The manager mirrors LLVM's ``opt`` pipelines: named optimization levels
(``O0``/``O1``/``O2``) assemble a fixed sequence of passes; each pass reports
whether it changed the function so pipelines can iterate to fixpoint.
"""

from __future__ import annotations

from repro.errors import PassError
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.verifier import verify_function


class FunctionPass:
    """Base class: transforms one function, returns True if it changed it."""

    #: short name used in pipeline descriptions and logs
    name = "pass"

    def run(self, fn: Function) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class PassManager:
    """Runs a sequence of function passes over every defined function."""

    def __init__(self, passes: list[FunctionPass], verify_each: bool = False) -> None:
        self.passes = passes
        self.verify_each = verify_each
        #: per-pass change counters from the last ``run`` call
        self.stats: dict[str, int] = {}

    def run(self, module: Module) -> bool:
        """Apply every pass once per function.  Returns True on any change."""
        self.stats = {p.name: 0 for p in self.passes}
        changed_any = False
        for fn in module.defined_functions():
            for p in self.passes:
                try:
                    changed = p.run(fn)
                except PassError:
                    raise
                except Exception as exc:  # pragma: no cover - diagnostics
                    raise PassError(f"pass {p.name} failed on @{fn.name}: {exc}") from exc
                if changed:
                    self.stats[p.name] += 1
                    changed_any = True
                if self.verify_each:
                    verify_function(fn)
        return changed_any

    def run_to_fixpoint(self, module: Module, max_iters: int = 8) -> int:
        """Repeat the pipeline until no pass makes a change. Returns #iters."""
        total_stats: dict[str, int] = {}
        for iteration in range(1, max_iters + 1):
            changed = self.run(module)
            for k, v in self.stats.items():
                total_stats[k] = total_stats.get(k, 0) + v
            if not changed:
                self.stats = total_stats
                return iteration
        self.stats = total_stats
        return max_iters


def build_pipeline(level: str, verify_each: bool = False) -> PassManager:
    """Construct the pass pipeline for an optimization level.

    * ``O0`` — no optimization: the frontend's alloca/load/store code goes to
      the backend untouched (like ``clang -O0``).
    * ``O1`` — SSA promotion plus scalar cleanups.
    * ``O2`` — O1 plus CSE across blocks and loop-invariant code motion,
      iterated to fixpoint (what the paper's ``-O3`` workflow approximates).
    """
    # Imports here to avoid cycles at package import time.
    from repro.irpasses.constfold import ConstantFold
    from repro.irpasses.cse import CommonSubexprElim
    from repro.irpasses.dce import DeadCodeElim
    from repro.irpasses.instcombine import InstCombine
    from repro.irpasses.licm import LoopInvariantCodeMotion
    from repro.irpasses.mem2reg import PromoteMemToReg
    from repro.irpasses.simplifycfg import SimplifyCFG

    if level == "O0":
        return PassManager([], verify_each=verify_each)
    if level == "O1":
        return PassManager(
            [
                PromoteMemToReg(),
                InstCombine(),
                ConstantFold(),
                CommonSubexprElim(),
                DeadCodeElim(),
                SimplifyCFG(),
            ],
            verify_each=verify_each,
        )
    if level == "O2":
        return PassManager(
            [
                PromoteMemToReg(),
                InstCombine(),
                ConstantFold(),
                CommonSubexprElim(),
                DeadCodeElim(),
                SimplifyCFG(),
                LoopInvariantCodeMotion(),
                InstCombine(),
                ConstantFold(),
                CommonSubexprElim(),
                DeadCodeElim(),
                SimplifyCFG(),
            ],
            verify_each=verify_each,
        )
    raise PassError(f"unknown optimization level: {level}")


def optimize_module(module: Module, level: str = "O2", verify_each: bool = False) -> None:
    """Convenience wrapper: run the named pipeline to fixpoint and verify."""
    pm = build_pipeline(level, verify_each=verify_each)
    if level == "O2":
        pm.run_to_fixpoint(module)
    else:
        pm.run(module)
    for fn in module.defined_functions():
        verify_function(fn)
