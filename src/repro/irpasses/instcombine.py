"""Peephole algebraic simplifications on the IR (a small InstCombine).

Only identities that hold for C/IEEE semantics are applied; in particular no
floating-point reassociation, and ``x * 0.0`` is *not* folded to ``0.0``
(NaN/-0.0 would change).
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import BinaryOp, ICmp, Select
from repro.ir.types import I64
from repro.ir.values import ConstantFloat, ConstantInt, Value
from repro.irpasses.base import FunctionPass


def _int_const(value: Value) -> int | None:
    return value.value if isinstance(value, ConstantInt) else None


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class InstCombine(FunctionPass):
    """Algebraic identity simplification."""

    name = "instcombine"

    def run(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            for instr in list(block.instructions):
                result = self._simplify(instr)
                if result is None:
                    continue
                if isinstance(result, tuple):
                    # Strength reduction: replace instr with a new instruction.
                    opcode, lhs, rhs = result
                    new = BinaryOp(opcode, lhs, rhs)
                    new.name = fn.next_name(opcode)
                    idx = block.instructions.index(instr)
                    block.insert(idx, new)
                    instr.replace_all_uses_with(new)
                    instr.erase()
                else:
                    instr.replace_all_uses_with(result)
                    if instr.num_uses == 0:
                        instr.erase()
                changed = True
        return changed

    @staticmethod
    def _simplify(instr) -> Value | tuple | None:
        if isinstance(instr, BinaryOp):
            op = instr.opcode
            lhs, rhs = instr.operands
            rc = _int_const(rhs)
            lc = _int_const(lhs)
            # --- integer identities -----------------------------------------
            if op == "add":
                if rc == 0:
                    return lhs
                if lc == 0:
                    return rhs
            elif op == "sub":
                if rc == 0:
                    return lhs
                if lhs is rhs:
                    return ConstantInt(0, I64)
            elif op == "mul":
                if rc == 1:
                    return lhs
                if lc == 1:
                    return rhs
                if rc == 0 or lc == 0:
                    return ConstantInt(0, I64)
                # Strength-reduce multiply by power of two to a shift —
                # the same transformation LLVM applies, and it matters for
                # FI realism: the machine instruction mix changes.
                if rc is not None and _is_power_of_two(rc):
                    return ("shl", lhs, ConstantInt(rc.bit_length() - 1, I64))
                if lc is not None and _is_power_of_two(lc):
                    return ("shl", rhs, ConstantInt(lc.bit_length() - 1, I64))
            elif op == "sdiv":
                if rc == 1:
                    return lhs
            elif op == "srem":
                if rc == 1:
                    return ConstantInt(0, I64)
            elif op in ("and", "or"):
                if lhs is rhs:
                    return lhs
                if op == "and" and (rc == 0 or lc == 0):
                    return ConstantInt(0, I64)
                if op == "and" and rc == -1:
                    return lhs
                if op == "or" and rc == 0:
                    return lhs
                if op == "or" and lc == 0:
                    return rhs
            elif op == "xor":
                if lhs is rhs:
                    return ConstantInt(0, I64)
                if rc == 0:
                    return lhs
                if lc == 0:
                    return rhs
            elif op in ("shl", "ashr"):
                if rc == 0:
                    return lhs
            # --- float identities (IEEE-safe only) ---------------------------
            elif op == "fadd":
                if isinstance(rhs, ConstantFloat) and rhs.value == 0.0 and not _neg_zero(rhs.value):
                    # x + (+0.0) == x for all x including -0.0? No:
                    # -0.0 + 0.0 == +0.0, so this is unsafe; skip.
                    return None
            elif op == "fmul":
                if isinstance(rhs, ConstantFloat) and rhs.value == 1.0:
                    return lhs
                if isinstance(lhs, ConstantFloat) and lhs.value == 1.0:
                    return rhs
            elif op == "fdiv":
                if isinstance(rhs, ConstantFloat) and rhs.value == 1.0:
                    return lhs
            return None
        if isinstance(instr, Select):
            cond = instr.operands[0]
            if isinstance(cond, ConstantInt):
                return instr.operands[1] if cond.value else instr.operands[2]
            if instr.operands[1] is instr.operands[2]:
                return instr.operands[1]
            return None
        if isinstance(instr, ICmp):
            lhs, rhs = instr.operands
            if lhs is rhs:
                from repro.ir.types import I1

                return ConstantInt(
                    int(instr.pred in ("eq", "sle", "sge")), I1
                )
            return None
        return None


def _neg_zero(x: float) -> bool:
    import math

    return x == 0.0 and math.copysign(1.0, x) < 0
