"""Control-flow graph cleanups.

Four rewrites, iterated until stable:

1. fold conditional branches with a constant condition,
2. delete unreachable blocks,
3. merge a block into its unique predecessor when that predecessor has a
   single successor,
4. forward branches through empty blocks that only jump onward.
"""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, CondBranch
from repro.ir.values import ConstantInt
from repro.irpasses.base import FunctionPass


def _reachable_blocks(fn: Function) -> set[int]:
    seen = {id(fn.entry)}
    work = [fn.entry]
    while work:
        block = work.pop()
        for succ in block.successors():
            if id(succ) not in seen:
                seen.add(id(succ))
                work.append(succ)
    return seen


class SimplifyCFG(FunctionPass):
    """Iteratively simplify the CFG."""

    name = "simplifycfg"

    def run(self, fn: Function) -> bool:
        changed = False
        while True:
            local = (
                self._fold_constant_branches(fn)
                | self._remove_unreachable(fn)
                | self._merge_into_predecessor(fn)
                | self._forward_empty_blocks(fn)
            )
            if not local:
                return changed
            changed = True

    # -- rewrites ------------------------------------------------------------

    @staticmethod
    def _fold_constant_branches(fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            term = block.terminator
            if not isinstance(term, CondBranch):
                continue
            cond = term.cond
            taken: BasicBlock | None = None
            if isinstance(cond, ConstantInt):
                taken = term.if_true if cond.value else term.if_false
            elif term.if_true is term.if_false:
                taken = term.if_true
            if taken is None:
                continue
            dead = term.if_false if taken is term.if_true else term.if_true
            if dead is not taken:
                for phi in dead.phis():
                    phi.remove_incoming(block)
            term.drop_operands()
            block.remove(term)
            block.append(Branch(taken))
            changed = True
        return changed

    @staticmethod
    def _remove_unreachable(fn: Function) -> bool:
        reachable = _reachable_blocks(fn)
        dead = [b for b in fn.blocks if id(b) not in reachable]
        if not dead:
            return False
        dead_ids = {id(b) for b in dead}
        # First detach phi edges from dead predecessors.
        for block in fn.blocks:
            if id(block) in dead_ids:
                continue
            for phi in block.phis():
                for pred in list(phi.incoming_blocks):
                    if id(pred) in dead_ids:
                        phi.remove_incoming(pred)
        # Then drop the dead blocks' instructions.  Values defined in dead
        # blocks cannot be used from reachable code (dominance), so remaining
        # users are themselves dead and vanish with their blocks.
        for block in dead:
            for instr in block.instructions:
                instr.drop_operands()
        for block in dead:
            for instr in list(block.instructions):
                instr.users.clear()
                block.remove(instr)
            fn.remove_block(block)
        return True

    @staticmethod
    def _merge_into_predecessor(fn: Function) -> bool:
        changed = False
        for block in list(fn.blocks):
            if block is fn.entry:
                continue
            preds = block.predecessors()
            if len(preds) != 1:
                continue
            pred = preds[0]
            term = pred.terminator
            if not isinstance(term, Branch) or term.target is not block:
                continue
            if pred is block:
                continue
            # Rewire phis: with a single predecessor each phi has one incoming.
            for phi in block.phis():
                value = phi.incoming_for(pred)
                phi.replace_all_uses_with(value)
                phi.drop_operands()
                block.remove(phi)
            term.drop_operands()
            pred.remove(term)
            for instr in list(block.instructions):
                block.remove(instr)
                instr.parent = pred
                pred.instructions.append(instr)
            # Successor phis referring to `block` must now refer to `pred`.
            for succ in pred.successors():
                for phi in succ.phis():
                    for i, b in enumerate(phi.incoming_blocks):
                        if b is block:
                            phi.incoming_blocks[i] = pred
            fn.remove_block(block)
            changed = True
        return changed

    @staticmethod
    def _forward_empty_blocks(fn: Function) -> bool:
        """Rewrite jumps through blocks containing only ``br label %next``."""
        changed = False
        for block in list(fn.blocks):
            if block is fn.entry or len(block.instructions) != 1:
                continue
            term = block.terminator
            if not isinstance(term, Branch):
                continue
            target = term.target
            if target is block:
                continue
            # Phi nodes in the target distinguish predecessors; forwarding a
            # predecessor through `block` must keep the phi consistent, which
            # is only easy when the target has no phis involving `block`.
            if any(block in phi.incoming_blocks for phi in target.phis()):
                continue
            preds = block.predecessors()
            if not preds:
                continue
            for pred in preds:
                pterm = pred.terminator
                assert pterm is not None
                if isinstance(pterm, (Branch, CondBranch)):
                    # If pred already branches to target, retargeting would
                    # create a duplicate edge that phis cannot represent.
                    if target in pterm.successors:
                        continue
                    pterm.replace_successor(block, target)
                    for phi in target.phis():
                        # target had no phi edges from block (checked above);
                        # nothing to fix.
                        pass
                    changed = True
            if not block.predecessors():
                term.drop_operands()
                block.remove(term)
                fn.remove_block(block)
                changed = True
        return changed
