"""Campaign coordinator: lease-based task dispatch with at-least-once
delivery, heartbeats and fault-tolerant retry.

The coordinator owns one or more campaign cells (a whole ``run_matrix``
worth, or a single campaign), shards each cell's outstanding experiment
indices into fixed index-range **tasks**, and serves them to workers over
the :mod:`repro.dist.protocol` wire format.  The delivery model:

* **Leases.** A granted task is leased, not given away: it carries a
  deadline, and the worker must heartbeat to keep it.  A worker that dies,
  hangs or partitions simply stops heartbeating; after ``lease_timeout``
  the sweep requeues its tasks for someone else.
* **Exponential backoff.** Every requeue (timeout, disconnect or an
  explicit ``task_failed``) re-schedules the task ``backoff_base * 2**k``
  seconds out, so a poison task cannot busy-spin the cluster; after
  ``max_attempts`` requeues the campaign fails loudly instead of looping.
* **At-least-once + exact dedup = exactly-once results.**  A slow worker
  whose lease expired may still finish and submit; because every
  experiment's seed is a pure function of its global index, that duplicate
  part is provably bit-identical to the accepted one and is dropped by
  index-set deduplication.  The merged campaign therefore equals a
  sequential run exactly, regardless of how chaotically tasks were
  re-leased.
* **Durability.** Completed ranges flow into the PR-1 checkpoint layer
  (:mod:`repro.campaign.checkpoint`): a killed coordinator restarted with
  the same ``checkpoint_dir`` re-shards only the indices that never
  completed.
* **Observability.** Worker joins, leases, requeues and completions are
  emitted through :mod:`repro.campaign.events`, so the JSONL log (and the
  CLI's live progress line) shows per-worker throughput.
"""

from __future__ import annotations

import heapq
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    CampaignCheckpoint,
    save_checkpoint,
    try_load_checkpoint,
)
from repro.campaign.classify import Outcome
from repro.campaign.events import EventLog
from repro.campaign.io import (
    experiment_event_fields,
    merge_results,
    result_from_dict,
)
from repro.campaign.results import CampaignResult
from repro.campaign.runner import matrix_checkpoint_path
from repro.campaign.schedule import (
    PhaseTimes,
    TriggerScheduler,
    resolve_trigger_order,
)
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    CampaignSpec,
    encode_indices,
    recv_message,
    send_message,
)
from repro.errors import CampaignError, DistError

#: Lease lifetime without a heartbeat before a task is requeued.
DEFAULT_LEASE_TIMEOUT = 60.0

#: Requeues per task before the campaign fails instead of retrying.
DEFAULT_MAX_ATTEMPTS = 5

#: Default sharding granularity: aim for this many tasks per cell so a
#: handful of workers still get several tasks each (stragglers re-lease
#: cheaply) without per-task compile/profile overhead dominating.
DEFAULT_TASKS_PER_CAMPAIGN = 32


def backoff_delay(attempt: int, base: float = 0.5, cap: float = 30.0) -> float:
    """Delay before a task's ``attempt``-th requeue becomes leasable."""
    if attempt < 1:
        return 0.0
    return min(cap, base * (2.0 ** (attempt - 1)))


def shard_indices(
    remaining: list[int], chunk_size: int
) -> list[tuple[int, ...]]:
    """Partition outstanding experiment indices into index-range tasks."""
    if chunk_size <= 0:
        raise DistError("chunk_size must be positive")
    return [
        tuple(remaining[lo:lo + chunk_size])
        for lo in range(0, len(remaining), chunk_size)
    ]


def trigger_order_indices(
    spec: CampaignSpec, remaining: list[int]
) -> list[int]:
    """Re-order a cell's outstanding indices along the golden timeline.

    Builds the cell's tool once in the coordinator (compile + profile —
    triggers are pure functions of the seeds) so that contiguous shards of
    the returned list are **contiguous trigger ranges**: each leased task
    hands its worker one compact window of the golden run to sweep with a
    single cursor.  Also the fail-fast check that the spec's tool/engine
    combination supports trigger scheduling — raising here beats a pickled
    worker traceback after the first lease.
    """
    from repro.fi.config import FIConfig
    from repro.fi.tools import TOOL_CLASSES

    config = FIConfig(
        enabled=spec.fi_enabled, funcs=spec.fi_funcs, instrs=spec.fi_instrs
    )
    tool = TOOL_CLASSES[spec.tool_name](
        spec.source, spec.workload, config=config, opt_level=spec.opt_level,
        opcode_faults=spec.opcode_faults, engine=spec.engine,
        fault_model=spec.fault_model,
    )
    TriggerScheduler(tool)
    return [
        i for _, i in resolve_trigger_order(tool, spec.base_seed, remaining)
    ]


@dataclass
class _Task:
    """One leasable unit of work: an index range of one campaign cell."""

    task_id: int
    key: tuple[str, str]
    indices: tuple[int, ...]
    attempt: int = 0
    not_before: float = 0.0
    state: str = "pending"  # pending | leased | done
    worker: str | None = None
    deadline: float = 0.0


@dataclass
class _Cell:
    """Mutable per-(workload, tool) campaign state."""

    spec: CampaignSpec
    ckpt_path: Path | None
    completed: set[int] = field(default_factory=set)
    prior: CampaignResult | None = None
    prior_indices: tuple[int, ...] = ()
    parts: dict[int, CampaignResult] = field(default_factory=dict)
    since_checkpoint: int = 0
    result: CampaignResult | None = None
    phases: PhaseTimes = field(default_factory=PhaseTimes)
    scheduler_totals: dict[str, int] = field(default_factory=dict)


class Coordinator:
    """Serve one or more campaign cells to ``refine-worker`` processes.

    Typical use::

        coord = Coordinator(specs, port=9100, checkpoint_dir="ckpt/")
        host, port = coord.start()      # background accept thread
        results = coord.wait()          # {(workload, tool): CampaignResult}
        coord.stop()

    or, equivalently, ``coord.run()``.  Results are bit-identical to
    running each cell through the sequential :func:`repro.campaign.run_campaign`
    with the same parameters, whatever the worker count or failure history.
    """

    def __init__(
        self,
        specs: CampaignSpec | list[CampaignSpec],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        chunk_size: int | None = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        heartbeat_interval: float | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        events: EventLog | None = None,
        allow_empty: bool = False,
    ) -> None:
        if isinstance(specs, CampaignSpec):
            specs = [specs]
        if not specs and not allow_empty:
            raise DistError("coordinator needs at least one campaign spec")
        keys = [spec.key for spec in specs]
        if len(set(keys)) != len(keys):
            raise DistError("duplicate (workload, tool) campaign specs")
        if lease_timeout <= 0:
            raise DistError("lease_timeout must be positive")
        if checkpoint_every <= 0:
            raise DistError("checkpoint_every must be positive")
        if max_attempts < 1:
            raise DistError("max_attempts must be >= 1")
        self._host = host
        self._port = port
        self._chunk_size = chunk_size
        self._lease_timeout = lease_timeout
        self._heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else max(0.05, lease_timeout / 4.0)
        )
        self._max_attempts = max_attempts
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._checkpoint_every = checkpoint_every
        self._events = events

        self._lock = threading.Lock()
        self._done_cv = threading.Condition(self._lock)
        self._cells: dict[tuple[str, str], _Cell] = {}
        self._tasks: dict[int, _Task] = {}
        self._pending: list[tuple[float, int]] = []  # (not_before, task_id)
        self._workers: dict[str, dict] = {}
        self._worker_seq = 0
        self._next_task = 0
        self._results: dict[tuple[str, str], CampaignResult] = {}
        #: task ids of retired (cancelled/collected) cells — a straggler's
        #: late submit against one of these gets a benign duplicate ack
        #: instead of a fatal "unknown task" error.
        self._retired: set[int] = set()
        self._error: Exception | None = None
        self._stopped = False
        self._draining = False
        self._drained = False
        self._drain_thread: threading.Thread | None = None
        self._started = time.monotonic()
        self._total = 0

        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conns: set[socket.socket] = set()

        for spec in specs:
            cell, remaining = self._prepare_cell(spec, checkpoint_dir)
            self._install_cell(cell, remaining)

    # ------------------------------------------------------------------ API

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the coordinator is listening on."""
        if self._sock is None:
            raise DistError("coordinator is not started")
        return self._sock.getsockname()[:2]

    def start(self) -> tuple[str, int]:
        """Bind, listen and start serving in the background; returns the
        bound (host, port) — pass ``port=0`` to pick a free port."""
        self._sock = socket.create_server(
            (self._host, self._port), reuse_port=False
        )
        self._sock.settimeout(0.2)
        self._started = time.monotonic()
        with self._lock:
            self._emit(
                "dist_start", cells=len(self._cells), total=self._total,
                resumed=sum(len(c.completed) for c in self._cells.values()),
                lease_timeout_s=self._lease_timeout,
            )
            for cell in self._cells.values():
                spec = cell.spec
                self._emit(
                    "cell_start", workload=spec.workload, tool=spec.tool_name,
                    n=spec.n, base_seed=spec.base_seed,
                    fault_model=spec.fault_model,
                    resumed=len(cell.completed),
                    resumed_counts={} if cell.prior is None else {
                        o.value: k for o, k in cell.prior.counts.items()
                    },
                )
                if len(cell.completed) == spec.n:
                    # Resumed an already-finished cell: nothing to serve.
                    if cell.prior is None:
                        raise CampaignError(
                            "checkpoint claims completion but holds no "
                            "partial result"
                        )
                    self._finish_cell(cell)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="refine-coordinator", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def wait(
        self, timeout: float | None = None
    ) -> dict[tuple[str, str], CampaignResult]:
        """Block until every cell completes; returns the result matrix.

        Raises the campaign's fatal error if one occurred, or
        :class:`DistError` on timeout / external :meth:`stop`.
        """
        with self._done_cv:
            finished = self._done_cv.wait_for(
                lambda: self._error is not None or self._stopped
                or len(self._results) == len(self._cells),
                timeout=timeout,
            )
            if self._error is not None:
                raise self._error
            if not finished:
                raise DistError(f"campaign did not finish within {timeout}s")
            if len(self._results) != len(self._cells):
                if self._drained:
                    raise DistError(
                        "campaign drained before completion "
                        "(checkpoints saved)"
                    )
                raise DistError("coordinator stopped before completion")
            return dict(self._results)

    def run(
        self, timeout: float | None = None
    ) -> dict[tuple[str, str], CampaignResult]:
        """``start()`` + ``wait()`` + ``stop()`` in one call."""
        self.start()
        try:
            return self.wait(timeout)
        finally:
            self.stop()

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Shut the server down, persisting every unfinished cell's
        checkpoint so a restarted coordinator resumes where this one died."""
        # After a clean finish, give connected workers a moment to collect
        # their final ``done`` before the sockets vanish; an abort (error or
        # unfinished campaign) cuts them off immediately instead.
        with self._lock:
            finished = (
                self._error is None
                and len(self._results) == len(self._cells)
                and not self._stopped
            )
        if finished:
            deadline = time.monotonic() + drain_timeout
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._conns:
                        break
                time.sleep(0.02)
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            for cell in self._cells.values():
                if cell.result is None and cell.ckpt_path is not None:
                    self._save_cell(cell)
            self._done_cv.notify_all()
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        if self._sock is not None:
            self._sock.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._drain_thread is not None:
            if self._drain_thread is not threading.current_thread():
                self._drain_thread.join(timeout=5.0)
            self._drain_thread = None

    @property
    def draining(self) -> bool:
        """True once a graceful shutdown has been requested."""
        return self._draining

    @property
    def drained(self) -> bool:
        """True once a graceful shutdown ran to completion (in-flight
        leases finished or the grace deadline passed; checkpoints saved)."""
        return self._drained

    def request_drain(self, grace_s: float = 30.0) -> None:
        """Begin a graceful shutdown (SIGTERM/SIGINT path).

        From this point work requests are answered with ``done`` (no new
        leases); workers holding leases keep heartbeating and submitting
        until they finish or ``grace_s`` elapses, then every unfinished
        cell is checkpointed and the server stops.  Idempotent.
        """
        with self._lock:
            if self._draining or self._stopped:
                return
            self._draining = True
            self._emit("dist_drain", grace_s=grace_s)
        self._drain_thread = threading.Thread(
            target=self._drain_loop, args=(grace_s,),
            name="refine-drain", daemon=True,
        )
        self._drain_thread.start()

    def add_cells(
        self,
        specs: CampaignSpec | list[CampaignSpec],
        checkpoint_dir: str | Path | None = None,
    ) -> list[tuple[str, str]]:
        """Admit new campaign cells into a live coordinator (service mode).

        Cells resume from ``checkpoint_dir`` exactly like construction-time
        cells; checkpoint loading and trigger-order resolution (which
        compiles the cell's tool) happen *before* the coordinator lock is
        taken so admission never stalls the worker data plane.  Raises
        :class:`DistError` if any key is already being served.
        """
        if isinstance(specs, CampaignSpec):
            specs = [specs]
        keys = [spec.key for spec in specs]
        if len(set(keys)) != len(keys):
            raise DistError("duplicate (workload, tool) campaign specs")
        with self._lock:
            taken = [k for k in keys if k in self._cells]
            if taken:
                raise DistError(f"cells already being served: {taken}")
        prepared = [
            self._prepare_cell(spec, checkpoint_dir) for spec in specs
        ]
        with self._lock:
            if self._stopped or self._draining:
                raise DistError("coordinator is shutting down")
            for cell, remaining in prepared:
                self._install_cell(cell, remaining)
                spec = cell.spec
                self._emit(
                    "cell_start", workload=spec.workload, tool=spec.tool_name,
                    n=spec.n, base_seed=spec.base_seed,
                    fault_model=spec.fault_model,
                    resumed=len(cell.completed),
                    resumed_counts={} if cell.prior is None else {
                        o.value: k for o, k in cell.prior.counts.items()
                    },
                )
                if len(cell.completed) == spec.n:
                    if cell.prior is None:
                        raise CampaignError(
                            "checkpoint claims completion but holds no "
                            "partial result"
                        )
                    self._finish_cell(cell)
        return keys

    def retire_cells(
        self, keys: list[tuple[str, str]]
    ) -> dict[tuple[str, str], CampaignResult | None]:
        """Remove cells from service (a finished or cancelled campaign).

        Unfinished cells are checkpointed first (a cancelled campaign
        resubmitted later resumes instead of restarting).  Outstanding task
        ids are remembered in the retired set so a slow worker's late
        submit is acknowledged as a duplicate rather than treated as fatal.
        Returns each cell's merged result so far (``None`` if nothing has
        completed).  Unknown keys are ignored.
        """
        out: dict[tuple[str, str], CampaignResult | None] = {}
        with self._lock:
            for key in keys:
                cell = self._cells.get(tuple(key))
                if cell is None:
                    continue
                if (
                    cell.result is None
                    and cell.ckpt_path is not None
                    and cell.completed
                ):
                    self._save_cell(cell)
                out[cell.spec.key] = (
                    cell.result if cell.result is not None
                    else self._merged(cell)
                )
                # Only after merging: _merged orders parts via their tasks.
                del self._cells[cell.spec.key]
                self._results.pop(cell.spec.key, None)
                self._total -= cell.spec.n
                for task_id, task in list(self._tasks.items()):
                    if task.key == cell.spec.key:
                        self._release(task)
                        del self._tasks[task_id]
                        self._retired.add(task_id)
        return out

    def worker_health(self) -> dict[str, dict]:
        """Live per-worker health/throughput snapshot.

        The service's admission control and ``status``/``list`` replies are
        built from this: connected workers, their lease load, lifetime
        experiment throughput and failure counts, and how long since each
        was last heard from.
        """
        now = time.monotonic()
        with self._lock:
            return {
                name: {
                    "procs": info["procs"],
                    "leased": len(info["tasks"]),
                    "experiments": info["experiments"],
                    "tasks_done": info["tasks_done"],
                    "failures": info["failures"],
                    "uptime_s": now - info["joined"],
                    "idle_s": now - info["last_seen"],
                }
                for name, info in self._workers.items()
            }

    def cell_progress(self) -> dict[tuple[str, str], tuple[int, int]]:
        """Per-cell ``(completed, n)`` experiment counts, live."""
        with self._lock:
            return {
                key: (len(cell.completed), cell.spec.n)
                for key, cell in self._cells.items()
            }

    # ----------------------------------------------------------- internals

    def _prepare_cell(
        self, spec: CampaignSpec, checkpoint_dir: str | Path | None
    ) -> tuple[_Cell, list[int]]:
        """Build a cell (checkpoint resume + work-order resolution) without
        touching shared state — safe outside the lock."""
        ckpt_path = None
        if checkpoint_dir is not None:
            ckpt_path = matrix_checkpoint_path(
                checkpoint_dir, spec.workload, spec.tool_name
            )
        cell = _Cell(spec=spec, ckpt_path=ckpt_path)
        ckpt = try_load_checkpoint(ckpt_path)
        if ckpt is not None:
            ckpt.matches(
                spec.workload, spec.tool_name, spec.n, spec.base_seed,
                spec.keep_records, fault_model=spec.fault_model,
            )
            cell.completed = set(ckpt.completed)
            cell.prior = ckpt.partial
            cell.prior_indices = tuple(sorted(cell.completed))
        remaining = [i for i in range(spec.n) if i not in cell.completed]
        if spec.schedule == "trigger" and remaining:
            remaining = trigger_order_indices(spec, remaining)
        return cell, remaining

    def _install_cell(self, cell: _Cell, remaining: list[int]) -> None:
        """Register a prepared cell and shard its tasks (lock held, or
        construction time)."""
        spec = cell.spec
        if spec.key in self._cells:
            raise DistError(f"cell {spec.key} already being served")
        self._cells[spec.key] = cell
        self._total += spec.n
        size = self._chunk_size or max(
            1, -(-spec.n // DEFAULT_TASKS_PER_CAMPAIGN)
        )
        for indices in shard_indices(remaining, size):
            task = _Task(
                task_id=self._next_task, key=spec.key, indices=indices
            )
            self._tasks[self._next_task] = task
            heapq.heappush(self._pending, (0.0, self._next_task))
            self._next_task += 1

    def _drain_loop(self, grace_s: float) -> None:
        deadline = time.monotonic() + grace_s
        while time.monotonic() < deadline:
            with self._lock:
                if self._error is not None or self._stopped:
                    return
                if not any(
                    t.state == "leased" for t in self._tasks.values()
                ):
                    break
            time.sleep(0.05)
        with self._lock:
            self._drained = True
            self._emit(
                "dist_drained",
                leased=sum(
                    1 for t in self._tasks.values() if t.state == "leased"
                ),
            )
        self.stop()

    def _emit(self, event: str, **fields) -> None:
        if self._events is not None:
            self._events.emit(event, **fields)

    def _fatal(self, exc: Exception) -> None:
        if self._error is None:
            self._error = exc
        self._done_cv.notify_all()

    def _accept_loop(self) -> None:
        while not self._stopped:
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                if self._stopped:
                    conn.close()
                    break
                self._conns.add(conn)
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        worker: str | None = None
        try:
            while True:
                message = recv_message(conn)
                if message is None:
                    break
                mtype = message["type"]
                with self._lock:
                    try:
                        worker, reply = self._dispatch(
                            worker, mtype, message
                        )
                    except (KeyError, TypeError, ValueError) as exc:
                        # A structurally valid frame with garbage fields
                        # (procs: {}, task_id: [1], missing keys...) is the
                        # *peer's* bug: reply with a bounded protocol error
                        # and drop the connection instead of letting the
                        # handler thread die silently.
                        reply = {
                            "type": "error",
                            "message": (
                                f"malformed {mtype!r} message: "
                                f"{type(exc).__name__}: {exc}"
                            ),
                        }
                send_message(conn, reply)
                if reply["type"] == "error":
                    break
        except DistError:
            pass  # torn connection: treated as a worker death below
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._conns.discard(conn)
                if worker is not None:
                    self._on_disconnect(worker)

    def _dispatch(
        self, worker: str | None, mtype: str, message: dict
    ) -> tuple[str | None, dict]:
        """Route one data-plane message (lock held).  Subclasses extend
        this with control-plane verbs; returns ``(worker, reply)``."""
        if mtype == "hello":
            return self._handle_hello(message)
        if worker is None:
            return None, {"type": "error", "message": "expected hello first"}
        info = self._workers.get(worker)
        if info is not None:
            info["last_seen"] = time.monotonic()
        if mtype == "request":
            return worker, self._handle_request(worker)
        if mtype == "heartbeat":
            return worker, self._handle_heartbeat(worker)
        if mtype == "result":
            return worker, self._handle_result(worker, message)
        if mtype == "task_failed":
            return worker, self._handle_failed(worker, message)
        return worker, {
            "type": "error",
            "message": f"unknown message type {mtype!r}",
        }

    def _handle_hello(self, message: dict) -> tuple[str, dict]:
        requested = message.get("name")
        if requested is not None and not isinstance(requested, str):
            raise TypeError("worker name must be a string")
        procs = int(message.get("procs", 1))
        self._worker_seq += 1
        name = requested or f"worker-{self._worker_seq}"
        if name in self._workers:
            name = f"{name}-{self._worker_seq}"
        now = time.monotonic()
        self._workers[name] = {
            "procs": procs, "tasks": set(), "joined": now, "last_seen": now,
            "experiments": 0, "tasks_done": 0, "failures": 0,
        }
        self._emit(
            "worker_join", worker=name, procs=self._workers[name]["procs"],
        )
        return name, {
            "type": "welcome",
            "version": PROTOCOL_VERSION,
            "worker": name,
            "heartbeat_s": self._heartbeat_interval,
            "lease_timeout_s": self._lease_timeout,
        }

    def _handle_request(self, worker: str) -> dict:
        if self._error is not None:
            return {"type": "error", "message": str(self._error)}
        if self._draining:
            # Graceful shutdown: refuse new leases; the worker treats
            # ``done`` as "campaign over" and exits (or, with a reconnect
            # window, comes back once the service restarts).
            return {"type": "done"}
        now = time.monotonic()
        self._sweep(now)
        while self._pending:
            not_before, task_id = self._pending[0]
            task = self._tasks.get(task_id)
            if task is None or task.state != "pending":
                heapq.heappop(self._pending)  # stale entry (done/retired)
                continue
            if not_before > now:
                break  # earliest backoff not yet elapsed
            heapq.heappop(self._pending)
            task.state = "leased"
            task.worker = worker
            task.deadline = now + self._lease_timeout
            self._workers[worker]["tasks"].add(task_id)
            spec = self._cells[task.key].spec
            self._emit(
                "lease", task=task_id, worker=worker, workload=spec.workload,
                tool=spec.tool_name, size=len(task.indices),
                attempt=task.attempt,
            )
            return {
                "type": "lease",
                "task_id": task_id,
                "spec": spec.to_dict(),
                "indices": encode_indices(task.indices),
                "attempt": task.attempt,
            }
        if self._campaign_done():
            return {"type": "done"}
        # Nothing leasable now: tell the worker when to ask again (earliest
        # backoff expiry or lease deadline, whichever might free work first).
        horizons = [nb for nb, tid in self._pending
                    if tid in self._tasks
                    and self._tasks[tid].state == "pending"]
        horizons.extend(
            t.deadline for t in self._tasks.values() if t.state == "leased"
        )
        delay = min(horizons) - now if horizons else self._heartbeat_interval
        return {
            "type": "wait",
            "delay_s": max(0.05, min(delay, self._lease_timeout)),
        }

    def _handle_heartbeat(self, worker: str) -> dict:
        now = time.monotonic()
        info = self._workers.get(worker)
        if info is not None:
            for task_id in info["tasks"]:
                task = self._tasks.get(task_id)
                if task is not None:
                    task.deadline = now + self._lease_timeout
        self._sweep(now)
        return {"type": "ok"}

    def _campaign_done(self) -> bool:
        """Should an idle work request be answered with ``done``?  The
        one-shot coordinator finishes with its fixed cell set; a
        persistent service overrides this (workers wait for the queue)."""
        return len(self._results) == len(self._cells)

    def _handle_result(self, worker: str, message: dict) -> dict:
        task = self._tasks.get(message.get("task_id"))
        if task is None:
            if message.get("task_id") in self._retired:
                # The cell was cancelled or collected while this worker was
                # finishing; its (bit-identical, unwanted) part is dropped.
                return {"type": "ok", "duplicate": True}
            return {"type": "error", "message": "result for unknown task"}
        cell = self._cells[task.key]
        self._release(task)
        if task.state == "done":
            # A slow worker finished a task someone else already completed.
            # The duplicate is bit-identical by construction (seeds are pure
            # functions of the global index) — acknowledge and drop it.
            self._emit(
                "task_done", task=task.task_id, worker=worker,
                workload=cell.spec.workload, tool=cell.spec.tool_name,
                size=len(task.indices), duplicate=True,
                completed=len(cell.completed), n=cell.spec.n,
            )
            return {"type": "ok", "duplicate": True}
        try:
            part = result_from_dict(message["part"])
        except (CampaignError, KeyError, TypeError, ValueError) as exc:
            return {"type": "error", "message": f"malformed part: {exc}"}
        problem = self._validate_part(cell, task, part, worker)
        if problem is not None:
            self._fatal(CampaignError(problem))
            return {"type": "error", "message": problem}
        task.state = "done"
        # One experiment event per accepted record (duplicates never reach
        # this point, so downstream sinks see each global index once per
        # stream); strip the records afterwards unless the campaign keeps
        # them, so checkpoints and merged results honour keep_records.
        for rec in part.records:
            self._emit(
                "experiment", workload=cell.spec.workload,
                tool=cell.spec.tool_name, task=task.task_id, worker=worker,
                **experiment_event_fields(rec),
            )
        if not cell.spec.keep_records:
            part.records = []
        pt = getattr(part, "phase_times", None)
        if pt is not None:
            cell.phases.accumulate(pt)
        sched_stats = getattr(part, "scheduler_stats", None)
        if sched_stats is not None:
            for key, val in sched_stats.items():
                cell.scheduler_totals[key] = (
                    cell.scheduler_totals.get(key, 0) + val
                )
            self._emit(
                "scheduler_stats", workload=cell.spec.workload,
                tool=cell.spec.tool_name, task=task.task_id, worker=worker,
                **sched_stats,
            )
        cell.parts[task.task_id] = part
        cell.completed.update(task.indices)
        cell.since_checkpoint += len(task.indices)
        info = self._workers.get(worker)
        if info is not None:
            info["experiments"] += len(task.indices)
            info["tasks_done"] += 1
        self._emit(
            "task_done", task=task.task_id, worker=worker,
            workload=cell.spec.workload, tool=cell.spec.tool_name,
            size=len(task.indices), duplicate=False, attempt=task.attempt,
            completed=len(cell.completed), n=cell.spec.n,
            completed_total=sum(
                len(c.completed) for c in self._cells.values()
            ),
            total=self._total,
            counts={o.value: part.frequency(o) for o in Outcome},
        )
        if (
            cell.ckpt_path is not None
            and cell.since_checkpoint >= self._checkpoint_every
        ):
            self._save_cell(cell)
        if len(cell.completed) == cell.spec.n:
            self._finish_cell(cell)
        return {"type": "ok", "duplicate": False}

    def _handle_failed(self, worker: str, message: dict) -> dict:
        task = self._tasks.get(message.get("task_id"))
        if task is None:
            if message.get("task_id") in self._retired:
                return {"type": "ok"}
            return {"type": "error", "message": "failure for unknown task"}
        info = self._workers.get(worker)
        if info is not None:
            info["failures"] += 1
        self._release(task)
        if task.state != "done":
            self._requeue(
                task, reason="failed",
                detail=str(message.get("error", ""))[:500],
            )
        return {"type": "ok"}

    def _validate_part(
        self, cell: _Cell, task: _Task, part: CampaignResult, worker: str
    ) -> str | None:
        """Sanity-check a submitted part; returns a problem description
        (fatal: a worker disagreeing about the program is corruption)."""
        spec = cell.spec
        if (part.workload, part.tool) != (spec.workload, spec.tool_name):
            return (
                f"part for {(part.workload, part.tool)} submitted against "
                f"cell {spec.key}"
            )
        if sum(part.counts.values()) != len(task.indices):
            return (
                f"part tallies {sum(part.counts.values())} experiments for "
                f"a {len(task.indices)}-experiment task"
            )
        reference = cell.prior or next(iter(cell.parts.values()), None)
        if reference is not None:
            if part.golden_output != reference.golden_output:
                return (
                    f"worker {worker!r} disagrees about the golden "
                    f"output of {spec.workload} — non-deterministic build?"
                )
            if part.total_candidates != reference.total_candidates:
                return (
                    f"worker {worker!r} sees {part.total_candidates} "
                    f"fault candidates, coordinator has "
                    f"{reference.total_candidates} — mismatched FIConfig?"
                )
        if part.fault_model != spec.fault_model:
            return (
                f"worker {worker!r} ran fault model {part.fault_model!r} "
                f"against a {spec.fault_model!r} cell"
            )
        return None

    def _release(self, task: _Task) -> None:
        """Drop a task's lease bookkeeping (if any)."""
        if task.worker is not None:
            info = self._workers.get(task.worker)
            if info is not None:
                info["tasks"].discard(task.task_id)
            task.worker = None

    def _requeue(self, task: _Task, reason: str, detail: str = "") -> None:
        task.attempt += 1
        if task.attempt > self._max_attempts:
            self._fatal(CampaignError(
                f"task {task.task_id} ({task.key[0]}/{task.key[1]}, "
                f"{len(task.indices)} experiments) failed {task.attempt} "
                f"times (last: {reason}{': ' + detail if detail else ''})"
            ))
            return
        worker = task.worker
        self._release(task)
        delay = backoff_delay(
            task.attempt, self._backoff_base, self._backoff_cap
        )
        task.state = "pending"
        task.not_before = time.monotonic() + delay
        heapq.heappush(self._pending, (task.not_before, task.task_id))
        self._emit(
            "task_requeue", task=task.task_id, worker=worker, reason=reason,
            attempt=task.attempt, delay_s=delay,
        )

    def _sweep(self, now: float) -> None:
        """Requeue every leased task whose heartbeat deadline passed."""
        for task in list(self._tasks.values()):
            if task.state == "leased" and task.deadline < now:
                self._requeue(task, reason="timeout")

    def _on_disconnect(self, worker: str) -> None:
        info = self._workers.pop(worker, None)
        if info is None:
            return
        self._emit("worker_leave", worker=worker)
        # A closed connection is a dead worker: requeue immediately rather
        # than waiting out the heartbeat timeout.
        for task_id in list(info["tasks"]):
            task = self._tasks.get(task_id)
            if task is not None and task.state == "leased":
                self._requeue(task, reason="disconnect")

    def _merged(self, cell: _Cell) -> CampaignResult | None:
        ordered: list[CampaignResult] = []
        index_sets: list[tuple[int, ...]] = []
        if cell.prior is not None:
            ordered.append(cell.prior)
            index_sets.append(cell.prior_indices)
        for task_id in sorted(
            cell.parts, key=lambda t: self._tasks[t].indices[0]
        ):
            ordered.append(cell.parts[task_id])
            index_sets.append(self._tasks[task_id].indices)
        if not ordered:
            return None
        merged = merge_results(ordered, indices=index_sets)
        merged.n = cell.spec.n  # campaign size, not just what has finished
        merged.records.sort(key=lambda rec: rec.index)
        return merged

    def _save_cell(self, cell: _Cell) -> None:
        spec = cell.spec
        save_checkpoint(
            CampaignCheckpoint(
                workload=spec.workload,
                tool=spec.tool_name,
                n=spec.n,
                base_seed=spec.base_seed,
                keep_records=spec.keep_records,
                fault_model=spec.fault_model,
                completed=set(cell.completed),
                partial=self._merged(cell),
            ),
            cell.ckpt_path,
        )
        cell.since_checkpoint = 0
        self._emit(
            "checkpoint", path=str(cell.ckpt_path),
            completed=len(cell.completed), n=spec.n,
        )

    def _finish_cell(self, cell: _Cell) -> None:
        spec = cell.spec
        cell.result = self._merged(cell)
        self._results[spec.key] = cell.result
        if cell.ckpt_path is not None:
            self._save_cell(cell)
        self._emit(
            "cell_finish", workload=spec.workload, tool=spec.tool_name,
            counts={o.value: cell.result.frequency(o) for o in Outcome},
            total_cycles=cell.result.total_cycles,
            total_steps=cell.result.total_steps,
            total_candidates=cell.result.total_candidates,
            golden_output=list(cell.result.golden_output),
            schedule=spec.schedule,
            fault_model=spec.fault_model,
            phases=cell.phases.as_dict(),
            **(
                {"scheduler": dict(cell.scheduler_totals)}
                if cell.scheduler_totals else {}
            ),
        )
        self._on_cell_complete(cell)
        self._maybe_finish_all()

    def _on_cell_complete(self, cell: _Cell) -> None:
        """Hook: one cell just produced its final merged result (lock
        held).  The service coordinator uses this to advance its queue."""

    def _maybe_finish_all(self) -> None:
        """Declare the whole run finished once every cell has a result
        (lock held).  The persistent service never finishes this way —
        it overrides this with a no-op and lives until drained."""
        if len(self._results) == len(self._cells):
            wall = time.monotonic() - self._started
            self._emit(
                "dist_finish", cells=len(self._cells), total=self._total,
                wall_s=wall,
                experiments_per_sec=self._total / wall if wall > 0 else 0.0,
            )
            self._done_cv.notify_all()
