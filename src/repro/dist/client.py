"""Worker-side client for the coordinator's wire protocol.

:class:`CoordinatorClient` wraps one TCP connection and speaks the strict
request/response protocol of :mod:`repro.dist.protocol`: ``hello`` once,
then any sequence of ``request`` / ``heartbeat`` / ``result`` /
``task_failed``.  :class:`repro.dist.worker.Worker` drives it for real
work; tests drive it directly to impersonate slow, dead or duplicate
workers deterministically.
"""

from __future__ import annotations

import socket

from repro.campaign.io import result_to_dict
from repro.campaign.results import CampaignResult
from repro.dist.protocol import recv_message, send_message
from repro.errors import DistConnectionError, DistError


def parse_address(address: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` string (the CLI's coordinator address form)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise DistError(f"address must be HOST:PORT, got {address!r}")
    try:
        return host, int(port)
    except ValueError:
        raise DistError(f"invalid port in address {address!r}") from None


class CoordinatorClient:
    """One worker's connection to a campaign coordinator."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: str | None = None,
        procs: int = 1,
        connect_timeout: float = 10.0,
    ) -> None:
        self._host = host
        self._port = port
        self._requested_name = name
        self._procs = procs
        self._connect_timeout = connect_timeout
        self._sock: socket.socket | None = None
        #: coordinator-assigned worker name (after :meth:`connect`)
        self.name: str | None = None
        #: heartbeat cadence the coordinator asked for (after connect)
        self.heartbeat_s: float = 1.0
        self.lease_timeout_s: float = 0.0

    def connect(self) -> dict:
        """Dial the coordinator and perform the hello/welcome handshake."""
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
            self._sock.settimeout(None)
        except OSError as exc:
            raise DistConnectionError(
                f"cannot reach coordinator at "
                f"{self._host}:{self._port}: {exc}"
            ) from exc
        welcome = self._call({
            "type": "hello", "name": self._requested_name,
            "procs": self._procs,
        })
        if welcome["type"] != "welcome":
            raise DistError(f"expected welcome, got {welcome['type']!r}")
        self.name = welcome["worker"]
        self.heartbeat_s = float(welcome["heartbeat_s"])
        self.lease_timeout_s = float(welcome["lease_timeout_s"])
        return welcome

    def request_task(self) -> dict:
        """Ask for work; returns a ``lease``, ``wait`` or ``done`` message."""
        reply = self._call({"type": "request"})
        if reply["type"] not in ("lease", "wait", "done"):
            raise DistError(f"unexpected reply {reply['type']!r} to request")
        return reply

    def heartbeat(self) -> None:
        """Keep this worker's leases alive."""
        self._call({"type": "heartbeat"})

    def complete(self, task_id: int, part: CampaignResult) -> dict:
        """Submit a finished task's partial result; returns the ``ok``
        acknowledgement (``duplicate`` tells whether it was dropped)."""
        return self._call({
            "type": "result", "task_id": task_id,
            "part": result_to_dict(part),
        })

    def fail(self, task_id: int, error: str) -> None:
        """Report that a leased task raised; the coordinator requeues it."""
        self._call({"type": "task_failed", "task_id": task_id,
                    "error": error})

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "CoordinatorClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, message: dict) -> dict:
        if self._sock is None:
            raise DistError("client is not connected")
        send_message(self._sock, message)
        reply = recv_message(self._sock)
        if reply is None:
            raise DistConnectionError("coordinator closed the connection")
        if reply["type"] == "error":
            raise DistError(
                f"coordinator rejected {message['type']}: "
                f"{reply.get('message', '')}"
            )
        return reply
