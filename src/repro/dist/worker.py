"""Campaign worker: lease tasks, run them, stream results back.

A worker is stateless and disposable — it holds no campaign state beyond
the task it is currently running, caches compiled tools per campaign spec
(so consecutive slices of the same cell skip recompilation), and can be
killed at any moment without corrupting the campaign: the coordinator's
lease timeout requeues whatever it was holding.

Slices execute through the exact machinery the single-host runners use
(:func:`repro.campaign.runner.run_experiment` /
:func:`repro.campaign.parallel.run_slice`), so a distributed campaign is
bit-identical to a sequential one.  With ``procs > 1`` a worker fans each
leased task out over a local process pool — the cluster topology the paper
used: many nodes, each fully subscribed (Appendix A.4).
"""

from __future__ import annotations

import random
import time
from concurrent.futures import (
    FIRST_EXCEPTION,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeout,
    wait as futures_wait,
)
from dataclasses import dataclass, replace

from repro.campaign.io import merge_results
from repro.campaign.parallel import run_slice
from repro.campaign.results import CampaignResult
from repro.campaign.runner import _fresh_result, run_experiment
from repro.campaign.schedule import PhaseTimes, TriggerScheduler
from repro.dist.client import CoordinatorClient
from repro.dist.protocol import CampaignSpec, decode_indices
from repro.errors import DistConnectionError, DistError
from repro.fi.config import FIConfig
from repro.fi.tools import FITool, TOOL_CLASSES


#: Upper bound on one idle-poll sleep, whatever delay the coordinator
#: suggests: bounds how stale a worker's view of leasable work can get.
_MAX_IDLE_POLL_S = 1.0


@dataclass
class WorkerStats:
    """What one worker did over its lifetime, for logs and tests."""

    name: str
    tasks: int = 0
    experiments: int = 0
    duplicates: int = 0
    failures: int = 0


class Worker:
    """Connect to a coordinator and run leased campaign slices until done.

    ``procs > 1`` splits every leased task across a local process pool.
    ``die_after=k`` is a test failpoint: the worker abruptly drops its
    connection while holding its ``k+1``-th lease, simulating a crash.

    ``reconnect_window=W`` (seconds of *continuous* coordinator downtime
    tolerated) makes the worker survive coordinator bounces: on a refused
    connection or a torn socket it retries with capped exponential backoff
    plus jitter, giving up only after the coordinator has been unreachable
    for W straight seconds.  ``0`` (the library default) keeps the
    historical die-on-first-failure behaviour; the ``refine-worker`` CLI
    defaults it on, so a fleet rides out service restarts.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        procs: int = 1,
        name: str | None = None,
        die_after: int | None = None,
        snapshot_dir: str | None = None,
        use_snapshots: bool = True,
        reconnect_window: float = 0.0,
        reconnect_base: float = 0.5,
        reconnect_cap: float = 15.0,
    ) -> None:
        if procs < 1:
            raise DistError("procs must be >= 1")
        self._client = CoordinatorClient(host, port, name=name, procs=procs)
        self._procs = procs
        self._die_after = die_after
        self._reconnect_window = reconnect_window
        self._reconnect_base = reconnect_base
        self._reconnect_cap = reconnect_cap
        #: where golden-run snapshots live on *this* host (specs carry only
        #: the interval; the store path is a per-worker concern).  ``None``
        #: keeps snapshots in-memory per tool; ``use_snapshots=False``
        #: ignores the spec's snapshot request entirely.
        self._snapshot_dir = snapshot_dir
        self._use_snapshots = use_snapshots
        self._tools: dict[CampaignSpec, FITool] = {}
        self._pool: ProcessPoolExecutor | None = None

    def run(self) -> WorkerStats:
        """Work until the coordinator reports the campaign done.

        Raises :class:`DistError` if the coordinator becomes unreachable or
        rejects the worker (campaigns surviving *worker* loss is the
        coordinator's job; a worker losing its coordinator just stops) —
        unless a ``reconnect_window`` is set, in which case connection loss
        triggers backoff-and-retry until the window of continuous downtime
        is exhausted.
        """
        stats = WorkerStats(name="")
        runner: ThreadPoolExecutor | None = None
        down_since: float | None = None
        attempt = 0
        try:
            while True:
                try:
                    self._client.connect()
                except DistConnectionError as exc:
                    down_since, attempt = self._backoff_or_raise(
                        exc, down_since, attempt
                    )
                    continue
                down_since, attempt = None, 0
                stats.name = self._client.name
                if runner is None:
                    # One slot: the leased task runs here while the protocol
                    # thread keeps heartbeating, so a long slice never looks
                    # like a dead worker.
                    runner = ThreadPoolExecutor(
                        max_workers=1,
                        thread_name_prefix=f"{self._client.name}-slice",
                    )
                try:
                    if self._serve(stats, runner):
                        return stats
                except DistConnectionError as exc:
                    # Connection lost mid-campaign (coordinator bounce,
                    # network blip).  The coordinator requeues our leases;
                    # any in-flight slice was discarded by _serve, so a
                    # reconnected worker can never submit a stale task id
                    # against a restarted coordinator's fresh numbering.
                    self._client.close()
                    down_since, attempt = self._backoff_or_raise(
                        exc, down_since, attempt
                    )
        finally:
            if runner is not None:
                runner.shutdown(wait=False, cancel_futures=True)
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            self._client.close()

    def _serve(self, stats: WorkerStats, runner: ThreadPoolExecutor) -> bool:
        """Drive one connection's lease/run/submit loop.  Returns ``True``
        when the coordinator says the campaign is done (worker may exit);
        raises :class:`DistError` when the connection is lost."""
        while True:
            message = self._client.request_task()
            if message["type"] == "done":
                return True
            if message["type"] == "wait":
                # The coordinator's delay_s is when new work *could*
                # appear (a lease deadline, a backoff expiry), but that
                # horizon moves — someone may crash, finish or submit
                # sooner.  Poll at least once a second so an idle worker
                # picks up requeued tasks (and the final done) promptly.
                time.sleep(min(message["delay_s"], _MAX_IDLE_POLL_S))
                continue
            if self._die_after is not None and stats.tasks >= self._die_after:
                # Failpoint: vanish while holding the lease.
                self._client.close()
                return True
            spec = CampaignSpec.from_dict(message["spec"])
            indices = decode_indices(message["indices"])
            future = runner.submit(self._run_task, spec, indices)
            try:
                part = self._await_heartbeating(future, message["task_id"])
            except DistError:
                # The slice keeps running in the single-slot runner; drain
                # it (discarding the result) before reconnecting so the
                # next lease starts clean and the stale result is never
                # submitted under a task id the coordinator may have
                # reissued after a restart.
                self._discard(future)
                raise
            if part is None:
                stats.failures += 1
                continue
            ack = self._client.complete(message["task_id"], part)
            stats.tasks += 1
            stats.experiments += len(indices)
            if ack.get("duplicate"):
                stats.duplicates += 1

    def _backoff_or_raise(
        self, exc: DistError, down_since: float | None, attempt: int
    ) -> tuple[float, int]:
        """Sleep out one reconnect backoff step, or re-raise ``exc`` when
        reconnection is disabled / the continuous-downtime window is
        spent.  Returns the updated ``(down_since, attempt)``."""
        if self._reconnect_window <= 0:
            raise exc
        now = time.monotonic()
        if down_since is None:
            down_since = now
        delay = min(
            self._reconnect_cap, self._reconnect_base * (2.0 ** attempt)
        )
        # Full jitter in [0.5x, 1.5x]: a bounced coordinator is not greeted
        # by its whole fleet redialing in lockstep.
        delay *= 0.5 + random.random()
        if now + delay > down_since + self._reconnect_window:
            raise DistError(
                f"coordinator unreachable for {now - down_since:.1f}s "
                f"(reconnect window {self._reconnect_window:.0f}s): {exc}"
            ) from exc
        time.sleep(delay)
        return down_since, attempt + 1

    @staticmethod
    def _discard(future: Future) -> None:
        """Wait out an in-flight slice and drop its result/exception."""
        try:
            future.result()
        except Exception:
            pass

    def _await_heartbeating(
        self, future: Future, task_id: int
    ) -> CampaignResult | None:
        """Block on the running slice, heartbeating the coordinator at its
        requested cadence; ``None`` means the slice failed (and was
        reported via ``task_failed`` so the coordinator requeues it)."""
        while True:
            try:
                return future.result(timeout=self._client.heartbeat_s)
            except FutureTimeout:
                self._client.heartbeat()
            except DistError:
                raise
            except Exception as exc:  # the slice itself raised
                self._client.fail(task_id, f"{type(exc).__name__}: {exc}")
                return None

    def _run_task(
        self, spec: CampaignSpec, indices: tuple[int, ...]
    ) -> CampaignResult:
        if self._procs > 1 and len(indices) > 1:
            return self._run_task_pooled(spec, indices)
        tool = self._tool_for(spec)
        result = _fresh_result(tool, len(indices))
        # Records are always collected: the coordinator emits per-experiment
        # telemetry (and feeds write-through result sinks) from them, then
        # strips them when the campaign did not ask for keep_records.
        if spec.schedule == "trigger":
            # The lease is a contiguous trigger range: sweep it with one
            # golden cursor.  Phase/scheduler breakdowns travel back on the
            # part (see repro.campaign.io) for coordinator-side telemetry.
            sched = TriggerScheduler(tool)
            for rec in sched.run_batch(spec.base_seed, indices):
                result.add(rec, keep_record=True)
            result.phase_times = sched.phases.as_dict()
            result.scheduler_stats = sched.stats.as_dict()
        else:
            for i in indices:
                result.add(
                    run_experiment(tool, spec.base_seed, i), keep_record=True
                )
        return result

    def _run_task_pooled(
        self, spec: CampaignSpec, indices: tuple[int, ...]
    ) -> CampaignResult:
        """Split one task across the local process pool (``-j N``)."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._procs)
        step = max(1, -(-len(indices) // self._procs))
        slices = [
            indices[lo:lo + step] for lo in range(0, len(indices), step)
        ]
        tasks = [
            spec.slice_task(sub, chunk=ci, snapshot_dir=self._snapshot_dir)
            for ci, sub in enumerate(slices)
        ]
        if not self._use_snapshots:
            tasks = [replace(t, snapshot_interval=None) for t in tasks]
        futures = [self._pool.submit(run_slice, t) for t in tasks]
        futures_wait(futures, return_when=FIRST_EXCEPTION)
        parts = [f.result() for f in futures]  # re-raises the first failure
        merged = merge_results(parts, indices=slices)
        merged.n = len(indices)
        if spec.schedule == "trigger":
            phases = PhaseTimes()
            totals: dict[str, int] = {}
            for p in parts:
                phases.accumulate(getattr(p, "phase_times", None) or {})
                for key, val in (getattr(p, "scheduler_stats", None) or {}).items():
                    totals[key] = totals.get(key, 0) + val
            merged.phase_times = phases.as_dict()
            merged.scheduler_stats = totals
        return merged

    def _tool_for(self, spec: CampaignSpec) -> FITool:
        tool = self._tools.get(spec)
        if tool is None:
            config = FIConfig(
                enabled=spec.fi_enabled, funcs=spec.fi_funcs,
                instrs=spec.fi_instrs,
            )
            tool = TOOL_CLASSES[spec.tool_name](
                spec.source, spec.workload, config=config,
                opt_level=spec.opt_level, opcode_faults=spec.opcode_faults,
                engine=spec.engine, fault_model=spec.fault_model,
            )
            if spec.snapshot_interval is not None and self._use_snapshots:
                tool.enable_snapshots(
                    interval=spec.snapshot_interval,
                    store_dir=self._snapshot_dir,
                    coarse=spec.schedule == "trigger",
                )
            self._tools[spec] = tool
        return tool
