"""In-process cluster harness: a coordinator plus threaded workers.

``LocalCluster`` spins up a real :class:`~repro.dist.coordinator.Coordinator`
on a loopback port and N real :class:`~repro.dist.worker.Worker` instances
in daemon threads — the full TCP protocol, leases, heartbeats and retry
machinery, with none of the process management.  It exists for:

* deterministic end-to-end tests (including kill-a-worker-mid-campaign,
  via the worker ``die_after`` failpoint or a hand-driven
  :class:`~repro.dist.client.CoordinatorClient` that leases and goes
  silent);
* single-host "distributed" runs where process isolation per worker is
  not needed (each worker can still run ``procs > 1`` process pools).
"""

from __future__ import annotations

import threading

from repro.campaign.checkpoint import DEFAULT_CHECKPOINT_EVERY
from repro.campaign.events import EventLog
from repro.campaign.results import CampaignResult
from repro.dist.coordinator import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_ATTEMPTS,
    Coordinator,
)
from repro.dist.protocol import CampaignSpec
from repro.dist.worker import Worker, WorkerStats
from repro.errors import DistError


class LocalCluster:
    """Coordinator + in-process workers, for tests and single-host runs.

    ::

        with LocalCluster(spec, workers=2, chunk_size=4) as cluster:
            results = cluster.results(timeout=60)

    Worker threads that die (failpoints, coordinator shutdown) never fail
    the cluster directly — fault tolerance is the coordinator's job, and
    :meth:`results` reflects only campaign-level success or failure.
    """

    def __init__(
        self,
        specs: CampaignSpec | list[CampaignSpec],
        workers: int = 2,
        *,
        worker_procs: int = 1,
        chunk_size: int | None = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base: float = 0.05,
        checkpoint_dir=None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        events: EventLog | None = None,
        snapshot_dir=None,
    ) -> None:
        self._snapshot_dir = None if snapshot_dir is None else str(snapshot_dir)
        self.coordinator = Coordinator(
            specs, host="127.0.0.1", port=0,
            chunk_size=chunk_size, lease_timeout=lease_timeout,
            max_attempts=max_attempts, backoff_base=backoff_base,
            checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every,
            events=events,
        )
        self.host, self.port = self.coordinator.start()
        self._threads: list[threading.Thread] = []
        self._stats: list[WorkerStats | None] = []
        self._worker_errors: list[Exception] = []
        for _ in range(workers):
            self.start_worker(procs=worker_procs)

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start_worker(
        self,
        *,
        procs: int = 1,
        name: str | None = None,
        die_after: int | None = None,
        snapshot_dir: str | None = None,
    ) -> Worker:
        """Spawn one worker thread against this cluster's coordinator."""
        worker = Worker(
            self.host, self.port, procs=procs, name=name, die_after=die_after,
            snapshot_dir=snapshot_dir or self._snapshot_dir,
        )
        slot = len(self._stats)
        self._stats.append(None)

        def _run() -> None:
            try:
                self._stats[slot] = worker.run()
            except (DistError, OSError) as exc:
                # Worker-level death (coordinator gone, connection dropped):
                # recorded, but campaign health is judged by the coordinator.
                self._worker_errors.append(exc)

        thread = threading.Thread(
            target=_run, name=f"local-worker-{slot}", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        return worker

    def results(
        self, timeout: float | None = 120.0
    ) -> dict[tuple[str, str], CampaignResult]:
        """Wait for the campaign and return the result matrix (see
        :meth:`Coordinator.wait`)."""
        results = self.coordinator.wait(timeout=timeout)
        for thread in self._threads:
            thread.join(timeout=10.0)
        return results

    def worker_stats(self) -> list[WorkerStats | None]:
        """Per-worker lifetime stats (``None`` for workers still running or
        that died before finishing)."""
        return list(self._stats)

    def stop(self) -> None:
        self.coordinator.stop()
        for thread in self._threads:
            thread.join(timeout=10.0)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
