"""Wire protocol for the distributed campaign service.

Every message is one **length-prefixed JSON object**: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON.  JSON keeps the
protocol debuggable (``nc`` + a hex dump is a complete protocol analyzer)
and the length prefix makes framing trivial and robust — a reader never
scans for delimiters and never observes a torn message.

The conversation is strict request/response, always initiated by the
worker.  Message types (``type`` field):

==================  =========================================================
worker → coordinator
==================  =========================================================
``hello``           ``name`` (requested worker name or ``None``), ``procs``
``request``         ask for a task lease
``heartbeat``       keep this worker's leases alive
``result``          ``task_id``, ``part`` (a serialized
                    :class:`~repro.campaign.results.CampaignResult`)
``task_failed``     ``task_id``, ``error`` — the slice raised; requeue it
==================  =========================================================

==================  =========================================================
coordinator → worker
==================  =========================================================
``welcome``         ``version``, ``worker`` (assigned name),
                    ``heartbeat_s``, ``lease_timeout_s``
``lease``           ``task_id``, ``spec`` (campaign parameters),
                    ``indices`` (run-length ``[start, stop)`` ranges),
                    ``attempt``
``wait``            ``delay_s`` — nothing leasable right now, poll again
``done``            campaign complete, worker may exit
``ok``              acknowledgement; for ``result`` carries ``duplicate``
``error``           ``message`` — fatal; the worker should abort
==================  =========================================================

A persistent :class:`~repro.service.ServiceCoordinator` additionally speaks
a **control plane** on the same port.  Control messages need no ``hello``
handshake — a control client connects, sends one request, reads one reply
and hangs up (:func:`repro.service.client.control_call`):

==================  =========================================================
client → service
==================  =========================================================
``submit``          ``request`` (a campaign request dict: workloads, tools,
                    n, seed, priority, tenant, lifecycle, validation knobs)
``status``          ``campaign`` (queue id) — one campaign's state + progress
``list``            optional ``tenant`` — queue snapshot, newest first
``cancel``          ``campaign`` — cancel queued or running campaign
``drain``           optional ``grace_s`` — stop admitting, finish in-flight
                    leases, checkpoint and shut the service down
``fetch``           ``campaign`` — full merged result of a finished campaign
                    (used by ``--watch`` and the equivalence tests)
==================  =========================================================

Control replies are ``ok`` messages carrying the verb's payload
(``campaign``, ``info``, ``campaigns``, ``result``...) or ``error``.

Experiment indices travel as run-length ``[start, stop)`` ranges (the same
encoding :mod:`repro.campaign.checkpoint` uses on disk), so a lease for ten
thousand contiguous experiments is a few bytes, not a few kilobytes.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, fields

from repro.campaign.parallel import SliceTask
from repro.campaign.runner import DEFAULT_SEED
from repro.campaign.schedule import SCHEDULES
from repro.errors import DistConnectionError, DistError
from repro.fi.config import INSTR_CLASSES
from repro.fi.tools import TOOL_CLASSES

#: Version 2 added the service control plane (``submit``/``status``/
#: ``list``/``cancel``/``drain``/``fetch``).  The worker-facing data plane
#: is unchanged, so version-1 workers interoperate with version-2
#: coordinators.
PROTOCOL_VERSION = 2

#: Control-plane verbs a persistent service accepts without a ``hello``
#: handshake.  The one-shot coordinator rejects all of these.
CONTROL_TYPES = ("submit", "status", "list", "cancel", "drain", "fetch")

#: Upper bound on one frame; a keep-records part for a huge slice is a few
#: MiB, so this is generous headroom, while a garbage length prefix (e.g. a
#: stray HTTP request hitting the port) fails fast instead of allocating.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


def send_message(sock: socket.socket, message: dict) -> None:
    """Send one length-prefixed JSON message."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_MESSAGE_BYTES:
        raise DistError(f"message of {len(data)} bytes exceeds protocol limit")
    try:
        sock.sendall(_HEADER.pack(len(data)) + data)
    except OSError as exc:
        raise DistConnectionError(
            f"connection lost while sending: {exc}"
        ) from exc


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    buf = bytearray()
    while len(buf) < count:
        try:
            chunk = sock.recv(count - len(buf))
        except OSError as exc:
            raise DistConnectionError(
                f"connection lost while receiving: {exc}"
            ) from exc
        if not chunk:
            if not buf:
                return None
            raise DistConnectionError(
                f"connection closed mid-message ({len(buf)}/{count} bytes)"
            )
        buf.extend(chunk)
    return bytes(buf)


def recv_message(sock: socket.socket) -> dict | None:
    """Receive one message; ``None`` on clean EOF (peer closed between
    frames).  Raises :class:`DistError` on a torn or malformed frame."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise DistError(f"frame of {length} bytes exceeds protocol limit")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise DistConnectionError(
            "connection closed between header and payload"
        )
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DistError(f"malformed message: {exc}") from exc
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise DistError("message must be a JSON object with a 'type' string")
    return message


def encode_indices(indices: tuple[int, ...] | list[int]) -> list[list[int]]:
    """Run-length encode sorted indices as ``[start, stop)`` ranges."""
    ranges: list[list[int]] = []
    for i in indices:
        if ranges and ranges[-1][1] == i:
            ranges[-1][1] = i + 1
        else:
            ranges.append([i, i + 1])
    return ranges


def decode_indices(ranges: list[list[int]]) -> tuple[int, ...]:
    out: list[int] = []
    for start, stop in ranges:
        out.extend(range(start, stop))
    return tuple(out)


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign cell's full parameter set — everything a worker needs to
    reproduce the coordinator's campaign bit-for-bit.

    Identical in content to the sequential/parallel runner's configuration:
    an experiment is a pure function of ``(base_seed, workload, tool_name,
    index)``, so any worker handed a spec plus an index range computes
    exactly what a local run would.
    """

    workload: str
    source: str
    tool_name: str
    n: int
    base_seed: int = DEFAULT_SEED
    keep_records: bool = False
    opt_level: str = "O2"
    fi_enabled: bool = True
    fi_funcs: str = "*"
    fi_instrs: str = "all"
    opcode_faults: float = 0.0
    #: snapshot fast path on the workers: ``None`` = off, ``0`` = auto
    #: interval, ``N`` = every N dynamic instructions.  The store location
    #: is worker-local (each host passes its own ``--snapshot-dir``).
    snapshot_interval: int | None = None
    #: execution engine the workers run on (``None`` = worker default)
    engine: str | None = None
    #: experiment visiting order: ``index`` (historical) or ``trigger``
    #: (tasks are contiguous trigger ranges; see
    #: :mod:`repro.campaign.schedule`).  Absent in messages from older
    #: coordinators, defaulting to ``index``.
    schedule: str = "index"
    #: canonical fault-model spec (:mod:`repro.fi.models`); absent in
    #: messages from older coordinators, defaulting to the paper's model.
    fault_model: str = "single-bit"

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise DistError("campaign spec needs n >= 1 experiments")
        if self.schedule not in SCHEDULES:
            raise DistError(
                f"unknown schedule {self.schedule!r}; choose from {SCHEDULES}"
            )
        if self.snapshot_interval is not None and self.snapshot_interval < 0:
            raise DistError("snapshot_interval must be >= 0 (0 = auto)")
        if self.engine is not None:
            from repro.engine import ENGINE_NAMES

            if self.engine not in ENGINE_NAMES:
                raise DistError(
                    f"unknown engine {self.engine!r}; "
                    f"choose from {ENGINE_NAMES}"
                )
        if self.tool_name not in TOOL_CLASSES:
            raise DistError(
                f"unknown tool {self.tool_name!r}; "
                f"choose from {sorted(TOOL_CLASSES)}"
            )
        if self.fi_instrs not in INSTR_CLASSES:
            raise DistError(
                f"fi_instrs must be one of {INSTR_CLASSES}, "
                f"got {self.fi_instrs!r}"
            )
        if not 0.0 <= self.opcode_faults <= 1.0:
            raise DistError("opcode_faults must be a probability")
        from repro.errors import CampaignError
        from repro.fi.models import parse_fault_model

        try:
            parse_fault_model(self.fault_model)
        except CampaignError as exc:
            raise DistError(str(exc)) from exc

    @property
    def key(self) -> tuple[str, str]:
        """The matrix cell this spec fills."""
        return (self.workload, self.tool_name)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        # Defaulted fields may be absent (older coordinators), but the
        # required ones must be present.
        kwargs = {f.name: data[f.name] for f in fields(cls) if f.name in data}
        try:
            return cls(**kwargs)
        except (KeyError, TypeError) as exc:
            raise DistError(f"malformed campaign spec: {exc}") from exc

    def slice_task(
        self,
        indices: tuple[int, ...],
        chunk: int = 0,
        snapshot_dir: str | None = None,
    ) -> SliceTask:
        """The :class:`SliceTask` that runs ``indices`` of this campaign
        through the shared slice machinery."""
        return SliceTask(
            tool_name=self.tool_name,
            source=self.source,
            workload=self.workload,
            opt_level=self.opt_level,
            fi_enabled=self.fi_enabled,
            fi_funcs=self.fi_funcs,
            fi_instrs=self.fi_instrs,
            base_seed=self.base_seed,
            indices=tuple(indices),
            keep_records=self.keep_records,
            opcode_faults=self.opcode_faults,
            chunk=chunk,
            snapshot_interval=self.snapshot_interval,
            snapshot_dir=snapshot_dir,
            engine=self.engine,
            schedule=self.schedule,
            fault_model=self.fault_model,
        )
