"""Distributed campaign execution: coordinator/worker dispatch over TCP.

The paper ran its 44,856-experiment evaluation as a cluster campaign; this
package is the cluster layer for ours.  A :class:`Coordinator` shards
campaigns into index-range tasks and serves them over a length-prefixed
JSON protocol; :class:`Worker` processes (the ``refine-worker`` CLI) lease
tasks, run them through the shared slice machinery, and stream results
back.  Leases + heartbeats + exponential-backoff requeue give at-least-once
delivery; exact per-index deduplication turns that into exactly-once
results, bit-identical to a sequential run (experiments are pure functions
of their global index).

See ``docs/api.md`` for the lifecycle and wire-protocol reference, and
:class:`LocalCluster` for an in-process harness.
"""

from repro.dist.client import CoordinatorClient, parse_address
from repro.dist.coordinator import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_ATTEMPTS,
    Coordinator,
    backoff_delay,
    shard_indices,
)
from repro.dist.local import LocalCluster
from repro.dist.protocol import (
    CONTROL_TYPES,
    PROTOCOL_VERSION,
    CampaignSpec,
    decode_indices,
    encode_indices,
    recv_message,
    send_message,
)
from repro.dist.worker import Worker, WorkerStats

__all__ = [
    "CoordinatorClient",
    "parse_address",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_MAX_ATTEMPTS",
    "Coordinator",
    "backoff_delay",
    "shard_indices",
    "LocalCluster",
    "CONTROL_TYPES",
    "PROTOCOL_VERSION",
    "CampaignSpec",
    "decode_indices",
    "encode_indices",
    "recv_message",
    "send_message",
    "Worker",
    "WorkerStats",
]
