"""Command-line entry points.

* ``refine-compile`` — compile a MiniC file (optionally with REFINE or LLFI
  instrumentation) and print the assembly, like invoking the paper's
  modified Clang driver with ``-mllvm -fi=true ...``.
* ``refine-campaign`` — run a fault-injection campaign matrix and dump CSV.
* ``refine-report`` — render the paper's figures/tables from a campaign.
"""

from __future__ import annotations

import argparse
import sys

from repro.backend import compile_minic, format_function
from repro.backend.compiler import CompileOptions
from repro.campaign import run_matrix
from repro.fi import FIConfig, TOOL_ORDER, llfi_instrument, refine_instrument
from repro.reporting import (
    matrix_to_csv,
    render_figure4,
    render_figure5,
    render_table4,
    render_table5,
    render_table6,
)
from repro.stats import margin_of_error
from repro.workloads import workload_sources


def _config_from_args(args) -> FIConfig:
    return FIConfig(enabled=True, funcs=args.fi_funcs, instrs=args.fi_instrs)


def compile_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="refine-compile",
        description="Compile MiniC to sx64 assembly, optionally with FI "
        "instrumentation (paper Table 2 flags).",
    )
    parser.add_argument("file", help="MiniC source file ('-' for stdin)")
    parser.add_argument("-O", dest="opt", default="O2",
                        choices=["O0", "O1", "O2"])
    parser.add_argument("--fi", default="false", choices=["true", "false"])
    parser.add_argument("--fi-tool", default="refine",
                        choices=["refine", "llfi"])
    parser.add_argument("--fi-funcs", default="*")
    parser.add_argument("--fi-instrs", default="all",
                        choices=["stack", "arithm", "mem", "all"])
    parser.add_argument("--expand-fi", action="store_true",
                        help="expand REFINE fi_check sites into the "
                        "PreFI/SetupFI/FI/PostFI block form (Figure 2)")
    args = parser.parse_args(argv)

    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    options = CompileOptions(opt_level=args.opt)
    if args.fi == "true":
        config = _config_from_args(args)
        if args.fi_tool == "refine":
            options.mir_pass = lambda b: refine_instrument(b, config)
        else:
            options.ir_pass = lambda m: llfi_instrument(m, config)
    binary = compile_minic(source, "cli", options)
    for mf in binary.functions.values():
        print(format_function(mf, expand_fi_checks=args.expand_fi))
        print()
    return 0


def campaign_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="refine-campaign",
        description="Run a fault-injection campaign over the paper's "
        "workloads and tools; prints CSV results.",
    )
    parser.add_argument("-n", "--samples", type=int, default=120,
                        help="experiments per (workload, tool); the paper "
                        "uses 1068 (<=3%% error at 95%% confidence)")
    parser.add_argument("-w", "--workloads", default="all",
                        help="comma-separated workload names or 'all'")
    parser.add_argument("-t", "--tools", default="all",
                        help="comma-separated tools (LLFI,REFINE,PINFI)")
    parser.add_argument("--seed", type=int, default=0x5EED0EF1)
    parser.add_argument("--fi-funcs", default="*")
    parser.add_argument("--fi-instrs", default="all",
                        choices=["stack", "arithm", "mem", "all"])
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    sources = workload_sources()
    if args.workloads != "all":
        wanted = args.workloads.split(",")
        sources = {w: sources[w] for w in wanted}
    tools = list(TOOL_ORDER) if args.tools == "all" else args.tools.split(",")

    moe = margin_of_error(args.samples)
    if not args.quiet:
        print(
            f"# campaign: n={args.samples} per (workload, tool) — margin of "
            f"error {moe * 100:.1f}% at 95% confidence",
            file=sys.stderr,
        )

    def progress(w, t, i, total):
        if not args.quiet and (i == total or i % 50 == 0):
            print(f"# {w}/{t}: {i}/{total}", file=sys.stderr)

    matrix = run_matrix(
        sources, tools, args.samples, args.seed,
        config=_config_from_args(args), progress=progress,
    )
    print(matrix_to_csv(matrix))
    return 0


def report_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="refine-report",
        description="Run a campaign and render the paper's figures/tables.",
    )
    parser.add_argument("-n", "--samples", type=int, default=120)
    parser.add_argument("-w", "--workloads", default="all")
    parser.add_argument("--seed", type=int, default=0x5EED0EF1)
    parser.add_argument(
        "--artifact", default="all",
        choices=["figure4", "figure5", "table4", "table5", "table6", "all"],
    )
    args = parser.parse_args(argv)

    sources = workload_sources()
    if args.workloads != "all":
        sources = {w: sources[w] for w in args.workloads.split(",")}
    names = list(sources)
    tools = list(TOOL_ORDER)

    matrix = run_matrix(sources, tools, args.samples, args.seed)
    out: list[str] = []
    if args.artifact in ("figure4", "all"):
        out.append(render_figure4(matrix, names, tools))
    if args.artifact in ("figure5", "all"):
        out.append(render_figure5(matrix, names))
    if args.artifact in ("table4", "all") and "AMG2013" in names:
        out.append(render_table4(matrix))
    if args.artifact in ("table5", "all"):
        out.append(render_table5(matrix, names))
    if args.artifact in ("table6", "all"):
        out.append(render_table6(matrix, names, tools))
    print("\n\n".join(out))
    return 0


def opt_main(argv: list[str] | None = None) -> int:
    """``refine-opt``: run IR pass pipelines on textual IR (or MiniC)."""
    parser = argparse.ArgumentParser(
        prog="refine-opt",
        description="Parse IR text (or compile MiniC with --minic), run an "
        "optimization pipeline, and print the resulting IR.",
    )
    parser.add_argument("file", help="input file ('-' for stdin)")
    parser.add_argument("-O", dest="opt", default="O2",
                        choices=["O0", "O1", "O2"])
    parser.add_argument("--minic", action="store_true",
                        help="treat the input as MiniC source, not IR text")
    parser.add_argument("--llfi", action="store_true",
                        help="apply LLFI instrumentation after optimizing")
    parser.add_argument("--verify", action="store_true",
                        help="verify the module after every pass")
    args = parser.parse_args(argv)

    from repro.frontend import compile_source
    from repro.ir import format_module, parse_module, verify_module
    from repro.irpasses import optimize_module

    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    if args.minic:
        module = compile_source(source, "cli")
    else:
        module = parse_module(source)
    verify_module(module)
    optimize_module(module, args.opt, verify_each=args.verify)
    if args.llfi:
        llfi_instrument(module, FIConfig())
        verify_module(module)
    print(format_module(module), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(campaign_main())
