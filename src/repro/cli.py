"""Command-line entry points.

* ``refine-compile`` — compile a MiniC file (optionally with REFINE or LLFI
  instrumentation) and print the assembly, like invoking the paper's
  modified Clang driver with ``-mllvm -fi=true ...``.
* ``refine-campaign`` — run a fault-injection campaign matrix and dump CSV;
  ``--dist HOST:PORT`` serves it to ``refine-worker`` processes instead of
  running locally.
* ``refine-worker`` — connect to a ``--dist`` coordinator (or a
  ``refine-service``) and run leased campaign slices; ``--reconnect-window``
  rides out coordinator restarts.
* ``refine-service`` — run the persistent campaign service (durable queue,
  per-tenant quotas, auto-validation, ``--soak`` divergence mining), plus
  ``status``/``list``/``cancel``/``drain`` control verbs against one.
* ``refine-report`` — render the paper's figures/tables from a campaign.
* ``refine-fuzz`` — differential fuzzing of the compiler and the
  zero-interference property (see :mod:`repro.testing`).

Exit codes: 0 success, 1 campaign/run failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import __version__
from repro.backend import compile_minic, format_function
from repro.backend.compiler import CompileOptions
from repro.campaign import (
    DEFAULT_CHECKPOINT_EVERY,
    CampaignStats,
    EventLog,
    Outcome,
    run_matrix,
    save_matrix,
)
from repro.engine import ENGINE_NAMES
from repro.errors import CampaignError, DistError, ReproError
from repro.fi import FIConfig, TOOL_ORDER, llfi_instrument, refine_instrument
from repro.reporting import (
    matrix_to_csv,
    render_figure4,
    render_figure5,
    render_table4,
    render_table5,
    render_table6,
)
from repro.stats import margin_of_error
from repro.workloads import workload_sources


def _config_from_args(args) -> FIConfig:
    return FIConfig(enabled=True, funcs=args.fi_funcs, instrs=args.fi_instrs)


def _add_version(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
    )


class _LiveTelemetry(EventLog):
    """Event sink that optionally persists JSONL *and* renders live progress.

    Consumes the campaign event stream (see :mod:`repro.campaign.events`):
    per-experiment events from the sequential runner, per-chunk events from
    the parallel runner, per-task events (with per-worker throughput) from
    the distributed coordinator.  On a TTY the progress line updates in
    place; otherwise a summary line is printed periodically and at
    completion.
    """

    #: non-TTY fallback: print one line every this many experiments.
    PRINT_EVERY = 100

    def __init__(self, path=None, quiet=False, out=None, sink=None):
        super().__init__(path=path)
        self._quiet = quiet
        self._out = out if out is not None else sys.stderr
        self._tty = getattr(self._out, "isatty", lambda: False)()
        self._stats: CampaignStats | None = None
        self._label = ""
        self._printed = 0
        #: optional write-through consumer of the full event stream (e.g.
        #: a repro.resultsdb.DatabaseSink behind --db)
        self._sink = sink

    def emit(self, event, **fields) -> None:
        super().emit(event, **fields)
        if self._sink is not None:
            self._sink.emit(event, **fields)
        if self._quiet:
            return
        if event == "campaign_start":
            self._label = f"{fields['workload']}/{fields['tool']}"
            self._stats = CampaignStats(
                fields["n"],
                done=fields.get("resumed", 0),
                counts={
                    Outcome(o): k
                    for o, k in fields.get("resumed_counts", {}).items()
                },
            )
            self._printed = 0
            if fields.get("resumed"):
                print(
                    f"# {self._label}: resumed {fields['resumed']}/"
                    f"{fields['n']} experiments from checkpoint",
                    file=self._out,
                )
        elif event == "experiment" and self._stats is not None:
            # Parallel chunks and distributed tasks re-emit per-experiment
            # events (tagged with ``chunk``/``task``) for result sinks; the
            # progress counter already folds those in via chunk_done /
            # task_done, so only count the sequential runner's events here.
            if "chunk" not in fields and "task" not in fields:
                self._stats.note(Outcome(fields["outcome"]))
                self._render()
        elif event == "chunk_done" and self._stats is not None:
            counts = {Outcome(k): v for k, v in fields.get("counts", {}).items()}
            self._stats.note_batch(counts)
            self._render()
        elif event == "snapshot_golden":
            src = "reused" if fields.get("reused") else "recorded"
            print(
                f"# {fields['workload']}/{fields['tool']}: {src} golden run "
                f"({fields['snapshots']} snapshots every "
                f"{fields['interval']} instrs, {fields['pages']} pages, "
                f"{fields['wall_s']:.2f}s)",
                file=self._out,
            )
        elif event == "snapshot_stats" and self._stats is not None:
            self._stats.note_snapshots(fields, accumulate="chunk" in fields)
        elif event == "scheduler_stats" and self._stats is not None:
            # Sequential-runner events are cumulative for the campaign;
            # per-chunk (parallel) and per-task (dist) events are
            # independent schedulers and accumulate.
            self._stats.note_scheduler(
                fields, accumulate="chunk" in fields or "task" in fields
            )
        elif event == "campaign_finish" and self._stats is not None:
            self._render(final=True)
            self._print_phases(fields)
            self._stats = None
        elif event == "cell_finish":
            self._print_phases(fields)
        elif event == "dist_start":
            self._label = "cluster"
            self._stats = CampaignStats(
                fields["total"], done=fields.get("resumed", 0)
            )
            self._printed = 0
            if fields.get("resumed"):
                print(
                    f"# cluster: resumed {fields['resumed']}/"
                    f"{fields['total']} experiments from checkpoints",
                    file=self._out,
                )
        elif event == "worker_join":
            print(
                f"# worker {fields['worker']} joined "
                f"({fields.get('procs', 1)} proc(s))",
                file=self._out,
            )
        elif event == "task_requeue":
            print(
                f"# task {fields['task']} requeued "
                f"({fields.get('reason', '?')} on {fields.get('worker')}, "
                f"attempt {fields.get('attempt', '?')})",
                file=self._out,
            )
        elif event == "task_done" and self._stats is not None:
            if not fields.get("duplicate"):
                counts = {
                    Outcome(k): v
                    for k, v in fields.get("counts", {}).items()
                }
                self._stats.note_batch(counts)
                if fields.get("worker"):
                    self._stats.note_worker(
                        fields["worker"], fields.get("size", 0)
                    )
                self._render()
        elif event == "dist_finish" and self._stats is not None:
            self._render(final=True)
            self._stats = None

    def _print_phases(self, fields: dict) -> None:
        """One per-phase wall-clock line at campaign/cell completion (the
        satellite breakdown behind the ``phases`` event field)."""
        phases = fields.get("phases")
        if not phases or not any(phases.values()):
            return
        label = f"{fields.get('workload', '?')}/{fields.get('tool', '?')}"
        bits = " ".join(
            f"{name.removesuffix('_s')} {phases.get(name, 0.0):.2f}s"
            for name in (
                "translate_s", "prefix_s", "fork_s", "tail_s", "classify_s"
            )
        )
        print(
            f"# {label} [{fields.get('schedule', 'index')}] phases: {bits}",
            file=self._out,
        )

    def _render(self, final: bool = False) -> None:
        line = f"# {self._label}: {self._stats.render()}"
        if self._tty:
            end = "\n" if final else ""
            print(f"\r\x1b[2K{line}", end=end, file=self._out, flush=True)
        elif final or self._stats.done - self._printed >= self.PRINT_EVERY:
            self._printed = self._stats.done
            print(line, file=self._out, flush=True)


def _install_drain_handler(coordinator, grace_s: float, label: str) -> None:
    """SIGTERM/SIGINT -> graceful drain: refuse new leases, let in-flight
    tasks finish (up to ``grace_s``), checkpoint, then stop.  A second
    signal falls through to the default handler (immediate death)."""
    import signal

    def handler(signum, frame):
        print(
            f"# {label}: caught {signal.Signals(signum).name}, draining "
            f"(grace {grace_s:.0f}s; checkpoints will be saved) — "
            f"signal again to abort",
            file=sys.stderr,
        )
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.default_int_handler)
        coordinator.request_drain(grace_s)

    try:
        signal.signal(signal.SIGTERM, handler)
        signal.signal(signal.SIGINT, handler)
    except ValueError:
        pass  # not the main thread (tests drive drain directly)


def compile_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="refine-compile",
        description="Compile MiniC to sx64 assembly, optionally with FI "
        "instrumentation (paper Table 2 flags).",
    )
    _add_version(parser)
    parser.add_argument("file", help="MiniC source file ('-' for stdin)")
    parser.add_argument("-O", dest="opt", default="O2",
                        choices=["O0", "O1", "O2"])
    parser.add_argument("--fi", default="false", choices=["true", "false"])
    parser.add_argument("--fi-tool", default="refine",
                        choices=["refine", "llfi"])
    parser.add_argument("--fi-funcs", default="*")
    parser.add_argument("--fi-instrs", default="all",
                        choices=["stack", "arithm", "mem", "all"])
    parser.add_argument("--expand-fi", action="store_true",
                        help="expand REFINE fi_check sites into the "
                        "PreFI/SetupFI/FI/PostFI block form (Figure 2)")
    args = parser.parse_args(argv)

    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    options = CompileOptions(opt_level=args.opt)
    if args.fi == "true":
        config = _config_from_args(args)
        if args.fi_tool == "refine":
            options.mir_pass = lambda b: refine_instrument(b, config)
        else:
            options.ir_pass = lambda m: llfi_instrument(m, config)
    binary = compile_minic(source, "cli", options)
    for mf in binary.functions.values():
        print(format_function(mf, expand_fi_checks=args.expand_fi))
        print()
    return 0


def campaign_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="refine-campaign",
        description="Run a fault-injection campaign over the paper's "
        "workloads and tools; prints CSV results.  With --dist the "
        "campaign is served to refine-worker processes over TCP instead "
        "of running locally.",
    )
    _add_version(parser)
    parser.add_argument("-n", "--samples", type=int, default=120,
                        help="experiments per (workload, tool); the paper "
                        "uses 1068 (<=3%% error at 95%% confidence)")
    parser.add_argument("-w", "--workloads", default="all",
                        help="comma-separated workload names or 'all'")
    parser.add_argument("-t", "--tools", default="all",
                        help="comma-separated tools (LLFI,REFINE,PINFI)")
    parser.add_argument("--seed", type=int, default=0x5EED0EF1)
    parser.add_argument("--fi-funcs", default="*")
    parser.add_argument("--fi-instrs", default="all",
                        choices=["stack", "arithm", "mem", "all"])
    parser.add_argument("-j", "--workers", type=int, default=1,
                        help="worker processes per campaign cell "
                        "(1 = sequential; results are identical)")
    parser.add_argument("--dist", metavar="HOST:PORT", default=None,
                        help="coordinator mode: listen here and serve the "
                        "campaign to refine-worker processes (results are "
                        "identical to a local run)")
    parser.add_argument("--lease-timeout", type=float, default=60.0,
                        help="seconds without a heartbeat before a "
                        "distributed task is requeued (--dist only)")
    parser.add_argument("--submit", metavar="HOST:PORT", default=None,
                        help="submit this campaign to a running "
                        "refine-service instead of executing it; prints the "
                        "campaign id (add --watch to wait for results)")
    parser.add_argument("--watch", action="store_true",
                        help="with --submit: poll until the campaign "
                        "finishes, then print its CSV like a local run")
    parser.add_argument("--tenant", default="default",
                        help="tenant to submit as (per-tenant quotas apply)")
    parser.add_argument("--priority", type=int, default=0,
                        help="queue priority (higher is admitted first; "
                        "never preempts a running campaign)")
    parser.add_argument("--keep-records", action="store_true",
                        help="keep per-experiment fault records "
                        "(persisted by --save)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="write per-cell checkpoints here; re-running "
                        "the same command resumes unfinished cells")
    parser.add_argument("--checkpoint-every", type=int,
                        default=DEFAULT_CHECKPOINT_EVERY,
                        help="experiments between checkpoint writes")
    parser.add_argument("--snapshot-interval", type=int, default=0,
                        metavar="N",
                        help="record a golden-run snapshot every N dynamic "
                        "instructions so fault runs skip the fault-free "
                        "prefix (0 = auto-tune per workload; results are "
                        "bit-identical either way)")
    parser.add_argument("--no-snapshot", action="store_true",
                        help="disable the snapshot fast path and run every "
                        "experiment from instruction 0")
    parser.add_argument("--engine", default=None,
                        choices=list(ENGINE_NAMES),
                        help="execution engine: 'fast' (free-run block "
                        "translation, the default) or 'reference' (the "
                        "original interpreter loop); results are "
                        "bit-identical either way")
    parser.add_argument("--schedule", default="index",
                        choices=["index", "trigger"],
                        help="experiment visiting order: 'index' (historical "
                        "order) or 'trigger' (sort by pre-resolved injection "
                        "point and fork each faulty tail off one shared "
                        "golden cursor; results are bit-identical either "
                        "way)")
    parser.add_argument("--fault-model", default="single-bit",
                        metavar="NAME[:PARAMS]",
                        help="fault model to inject (see refine-db/docs): "
                        "single-bit (paper default), multi-bit[:k=K,"
                        "adjacent=1], memory-cell, cache-line, opcode, "
                        "stuck-at[:value=V,dwell=N]; append ',weighted=1' "
                        "for residency-weighted trigger sampling")
    parser.add_argument("--events", default=None,
                        help="append JSONL telemetry events to this file")
    parser.add_argument("--save", default=None,
                        help="also save the full campaign matrix (JSON)")
    parser.add_argument("--db", default=None, metavar="PATH",
                        help="write results through to a SQLite store "
                        "(created if missing; see refine-db)")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    sources = workload_sources()
    if args.workloads != "all":
        wanted = args.workloads.split(",")
        unknown = [w for w in wanted if w not in sources]
        if unknown:
            print(
                f"refine-campaign: error: unknown workload(s) "
                f"{', '.join(unknown)}; choose from "
                f"{', '.join(sorted(sources))}",
                file=sys.stderr,
            )
            return 2
        sources = {w: sources[w] for w in wanted}
    tools = list(TOOL_ORDER) if args.tools == "all" else args.tools.split(",")

    if args.snapshot_interval < 0:
        print("refine-campaign: error: --snapshot-interval must be >= 0 "
              "(0 = auto)", file=sys.stderr)
        return 2
    args.snapshot_interval = (
        None if args.no_snapshot else args.snapshot_interval
    )

    from repro.fi.models import parse_fault_model

    try:
        # Canonicalize early so checkpoints, events and the DB all carry
        # the same spec string regardless of how the user spelled it.
        args.fault_model = parse_fault_model(args.fault_model).spec
    except CampaignError as exc:
        print(f"refine-campaign: error: {exc}", file=sys.stderr)
        return 2

    if args.submit is not None:
        return _submit_to_service(args, sources, tools)

    try:
        moe = margin_of_error(args.samples)
    except ReproError as exc:
        print(f"refine-campaign: error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(
            f"# campaign: n={args.samples} per (workload, tool) — margin of "
            f"error {moe * 100:.1f}% at 95% confidence",
            file=sys.stderr,
        )

    db = sink = None
    if args.db is not None:
        from repro.resultsdb import DatabaseSink, ResultsDB

        db = ResultsDB(args.db)
        sink = DatabaseSink(db, source="refine-campaign")
    telemetry = _LiveTelemetry(path=args.events, quiet=args.quiet, sink=sink)
    try:
        if args.dist is not None:
            matrix = _serve_distributed(args, sources, tools, telemetry)
        else:
            matrix = run_matrix(
                sources, tools, args.samples, args.seed,
                config=_config_from_args(args),
                keep_records=args.keep_records,
                workers=args.workers,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                events=telemetry,
                snapshot_interval=args.snapshot_interval,
                engine=args.engine,
                schedule=args.schedule,
                fault_model=args.fault_model,
            )
        if db is not None:
            # The sink streamed every experiment; fill in the metadata the
            # event stream does not carry (golden output, candidate counts).
            from repro.resultsdb import ingest_result

            sink.close()
            for result in matrix.values():
                ingest_result(
                    db, result, base_seed=args.seed, source="refine-campaign"
                )
    except (CampaignError, DistError) as exc:
        print(f"refine-campaign: error: {exc}", file=sys.stderr)
        return 1
    finally:
        telemetry.close()
        if sink is not None:
            sink.close()
        if db is not None:
            db.close()
    if args.save:
        save_matrix(matrix, args.save)
    print(matrix_to_csv(matrix))
    return 0


def _serve_distributed(args, sources, tools, telemetry):
    """Coordinator mode for ``refine-campaign --dist HOST:PORT``."""
    from repro.dist import CampaignSpec, Coordinator, parse_address

    host, port = parse_address(args.dist)
    specs = [
        CampaignSpec(
            workload=workload, source=source, tool_name=tool_name,
            n=args.samples, base_seed=args.seed,
            keep_records=args.keep_records,
            fi_funcs=args.fi_funcs, fi_instrs=args.fi_instrs,
            snapshot_interval=args.snapshot_interval,
            engine=args.engine,
            schedule=args.schedule,
            fault_model=args.fault_model,
        )
        for workload, source in sources.items()
        for tool_name in tools
    ]
    coordinator = Coordinator(
        specs, host=host, port=port,
        lease_timeout=args.lease_timeout,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        events=telemetry,
    )
    bound_host, bound_port = coordinator.start()
    if not args.quiet:
        print(
            f"# coordinator listening on {bound_host}:{bound_port} — "
            f"start workers with: refine-worker {bound_host}:{bound_port}",
            file=sys.stderr,
        )
    _install_drain_handler(
        coordinator, grace_s=30.0, label="refine-campaign"
    )
    try:
        return coordinator.wait()
    finally:
        coordinator.stop()


def _submit_to_service(args, sources, tools) -> int:
    """``refine-campaign --submit HOST:PORT [--watch]``: enqueue the
    campaign on a running refine-service instead of executing it here."""
    from repro.campaign.io import result_from_dict
    from repro.dist import parse_address
    from repro.errors import ServiceError
    from repro.service import ServiceClient

    try:
        host, port = parse_address(args.submit)
    except DistError as exc:
        print(f"refine-campaign: error: {exc}", file=sys.stderr)
        return 2
    request = {
        "workloads": list(sources), "tools": tools, "n": args.samples,
        "base_seed": args.seed, "keep_records": args.keep_records,
        "fi_funcs": args.fi_funcs, "fi_instrs": args.fi_instrs,
        "snapshot_interval": args.snapshot_interval,
        "schedule": args.schedule, "fault_model": args.fault_model,
    }
    if args.engine is not None:
        request["engine"] = args.engine
    client = ServiceClient(host, port)
    try:
        cid = client.submit(
            request, tenant=args.tenant, priority=args.priority
        )
    except DistError as exc:
        print(f"refine-campaign: error: {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        print(
            f"# submitted campaign {cid} to {host}:{port} "
            f"(tenant {args.tenant!r}, priority {args.priority})",
            file=sys.stderr,
        )
    if not args.watch:
        print(cid)
        return 0

    last_line = [""]

    def progress(status: dict) -> None:
        if args.quiet:
            return
        state = status["info"]["state"]
        bits = [f"# campaign {cid}: {state}"]
        done = total = 0
        for cell in status.get("progress", {}).values():
            if cell.get("completed", 0) >= 0 and "n" in cell:
                done += cell["completed"]
                total += cell["n"]
        if total:
            bits.append(f"{done}/{total} experiment(s)")
        line = " ".join(bits)
        if line != last_line[0]:
            last_line[0] = line
            print(line, file=sys.stderr)

    try:
        final = client.watch(cid, timeout=None, callback=progress)
    except DistError as exc:
        print(f"refine-campaign: error: {exc}", file=sys.stderr)
        return 1
    info = final["info"]
    if info["state"] != "done":
        detail = f": {info['error']}" if info.get("error") else ""
        print(
            f"refine-campaign: campaign {cid} {info['state']}{detail}",
            file=sys.stderr,
        )
        return 1
    if info.get("validation") and not args.quiet:
        print(f"# validation: {info['validation']}", file=sys.stderr)
    try:
        fetched = client.fetch(cid)
    except ServiceError as exc:
        # Finished but evicted from the result cache (service restarted or
        # many campaigns later): the verdict above still stands and the
        # data lives in the service's database.
        print(f"refine-campaign: note: {exc}", file=sys.stderr)
        return 0
    matrix = {}
    for key, cell in fetched["results"].items():
        workload, _, tool = key.partition("/")
        matrix[(workload, tool)] = result_from_dict(cell)
    if args.save:
        save_matrix(matrix, args.save)
    print(matrix_to_csv(matrix))
    return 0


def worker_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="refine-worker",
        description="Join a refine-campaign --dist coordinator, lease "
        "campaign slices and stream results back until the campaign "
        "completes.",
    )
    _add_version(parser)
    parser.add_argument("address", metavar="HOST:PORT",
                        help="coordinator address (from refine-campaign "
                        "--dist)")
    parser.add_argument("-j", "--procs", type=int, default=1,
                        help="local worker processes; each leased task is "
                        "split across them")
    parser.add_argument("--name", default=None,
                        help="worker name for logs (default: assigned by "
                        "the coordinator)")
    parser.add_argument("--snapshot-dir", default=None,
                        help="local directory for shared golden-run "
                        "snapshots (when the coordinator's campaign has "
                        "snapshots enabled); default: in-memory per tool")
    parser.add_argument("--no-snapshot", action="store_true",
                        help="ignore the campaign's snapshot settings and "
                        "run every experiment from instruction 0")
    parser.add_argument("--reconnect-window", type=float, default=300.0,
                        metavar="SECONDS",
                        help="keep redialing an unreachable coordinator "
                        "(capped exponential backoff with jitter) for this "
                        "long before giving up — rides out refine-service "
                        "restarts (0 = die on first connection loss)")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    from repro.dist import Worker, parse_address

    try:
        host, port = parse_address(args.address)
    except DistError as exc:
        print(f"refine-worker: error: {exc}", file=sys.stderr)
        return 2
    if args.procs < 1:
        print("refine-worker: error: -j must be >= 1", file=sys.stderr)
        return 2
    if args.reconnect_window < 0:
        print("refine-worker: error: --reconnect-window must be >= 0",
              file=sys.stderr)
        return 2
    try:
        stats = Worker(
            host, port, procs=args.procs, name=args.name,
            snapshot_dir=args.snapshot_dir,
            use_snapshots=not args.no_snapshot,
            reconnect_window=args.reconnect_window,
        ).run()
    except (DistError, ReproError) as exc:
        print(f"refine-worker: error: {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        print(
            f"# {stats.name}: ran {stats.experiments} experiments in "
            f"{stats.tasks} tasks ({stats.duplicates} duplicate(s), "
            f"{stats.failures} failure(s))",
            file=sys.stderr,
        )
    return 0


class _ServiceTelemetry(EventLog):
    """Operator-facing event rendering for ``refine-service serve``.

    The one-shot progress model of :class:`_LiveTelemetry` does not fit a
    service (there is no fixed total), so this prints one line per
    campaign/worker lifecycle event and stays silent about the
    per-experiment stream (which still lands in ``--events`` and the
    database)."""

    def __init__(self, path=None, quiet=False, out=None):
        super().__init__(path=path)
        self._quiet = quiet
        self._out = out if out is not None else sys.stderr

    def emit(self, event, **fields) -> None:
        super().emit(event, **fields)
        if self._quiet:
            return
        line = None
        if event == "campaign_admitted":
            line = (
                f"campaign {fields['campaign']} admitted "
                f"(tenant {fields['tenant']!r}, priority "
                f"{fields['priority']}, {fields['cells']} cell(s), "
                f"{fields['experiments']} experiment(s))"
            )
        elif event == "campaign_done":
            line = (
                f"campaign {fields['campaign']} done — validation: "
                f"{fields['validation']}"
            )
        elif event == "campaign_failed":
            line = f"campaign {fields['campaign']} FAILED: {fields['error']}"
        elif event == "campaign_cancelled":
            line = f"campaign {fields['campaign']} cancelled"
        elif event == "soak_submit":
            line = (
                f"soak round {fields['round']}: queued "
                f"{'/'.join(fields['workloads'])} x "
                f"{'/'.join(fields['tools'])} (campaign {fields['campaign']})"
            )
        elif event == "worker_join":
            line = (
                f"worker {fields['worker']} joined "
                f"({fields.get('procs', 1)} proc(s))"
            )
        elif event == "worker_leave":
            line = f"worker {fields['worker']} left"
        elif event == "service_recover":
            line = (
                f"recovered {len(fields['campaigns'])} interrupted "
                f"campaign(s): {fields['campaigns']}"
            )
        elif event == "service_error":
            line = f"service error: {fields['error']}"
        elif event == "dist_drain":
            line = f"draining (grace {fields.get('grace_s', 0):.0f}s)"
        elif event == "dist_drained":
            line = "drained"
        if line is not None:
            print(f"# {line}", file=self._out, flush=True)


def _cmd_service_serve(args) -> int:
    from repro.dist import parse_address
    from repro.service import ServiceCoordinator

    try:
        host, port = parse_address(args.listen)
    except DistError as exc:
        print(f"refine-service: error: {exc}", file=sys.stderr)
        return 2
    telemetry = _ServiceTelemetry(path=args.events, quiet=args.quiet)
    try:
        coordinator = ServiceCoordinator(
            host, port,
            queue_path=args.queue, db_path=args.db,
            checkpoint_root=args.checkpoint_dir,
            tenant_quota=args.tenant_quota,
            max_active=args.max_active,
            chunk_size=args.chunk_size,
            lease_timeout=args.lease_timeout,
            checkpoint_every=args.checkpoint_every,
            events=telemetry,
            soak=args.soak, soak_seed=args.soak_seed, soak_n=args.soak_n,
            soak_backlog=args.soak_backlog, artifacts_dir=args.artifacts,
        )
    except ReproError as exc:
        print(f"refine-service: error: {exc}", file=sys.stderr)
        telemetry.close()
        return 1
    bound_host, bound_port = coordinator.start()
    # Always announce the bound address: with ``--listen HOST:0`` the
    # kernel-assigned port printed here is the only way to reach the
    # service, so ``-q`` must not swallow it.
    print(f"# service listening on {bound_host}:{bound_port}",
          file=sys.stderr)
    if not args.quiet:
        print(
            f"#   workers: refine-worker {bound_host}:{bound_port}\n"
            f"#   submit:  refine-campaign --submit "
            f"{bound_host}:{bound_port} -w ... -t ... -n ...\n"
            f"#   control: refine-service status|list|cancel|drain "
            f"{bound_host}:{bound_port} ...",
            file=sys.stderr,
        )
    _install_drain_handler(
        coordinator, grace_s=args.grace, label="refine-service"
    )
    try:
        coordinator.serve_until_stopped()
    except ReproError as exc:
        print(f"refine-service: error: {exc}", file=sys.stderr)
        return 1
    finally:
        coordinator.stop()
        telemetry.close()
    return 0


def _service_client(args):
    from repro.dist import parse_address
    from repro.service import ServiceClient

    host, port = parse_address(args.address)
    return ServiceClient(host, port)


def _cmd_service_status(args) -> int:
    status = _service_client(args).status(args.campaign)
    info = status["info"]
    line = (
        f"campaign {info['id']}: {info['state']} "
        f"(tenant {info['tenant']!r}, priority {info['priority']}, "
        f"lifecycle {info['lifecycle']})"
    )
    if info.get("validation"):
        line += f" — validation: {info['validation']}"
    if info.get("error"):
        line += f" — error: {info['error']}"
    print(line)
    for key, cell in sorted(status.get("progress", {}).items()):
        if "n" in cell:
            print(f"  {key}: {cell['completed']}/{cell['n']}")
    return 0


def _cmd_service_list(args) -> int:
    listing = _service_client(args).list(tenant=args.tenant)
    counts = listing.get("counts", {})
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"# queue: {summary or 'empty'}; "
          f"{len(listing.get('workers', {}))} worker(s) connected"
          + ("; DRAINING" if listing.get("draining") else ""))
    if listing.get("sink_error"):
        print(f"# WARNING results sink: {listing['sink_error']}")
    for row in listing.get("campaigns", []):
        flags = " [cancel requested]" if row["cancel_requested"] else ""
        validation = (
            f" validation={row['validation']}" if row.get("validation") else ""
        )
        print(
            f"{row['id']:>5d} {row['state']:>10s} prio={row['priority']:<3d} "
            f"tenant={row['tenant']} lifecycle={row['lifecycle']}"
            f"{validation}{flags}"
        )
    return 0


def _cmd_service_cancel(args) -> int:
    reply = _service_client(args).cancel(args.campaign)
    if reply.get("cancel_requested"):
        print(f"# campaign {args.campaign}: cancellation requested "
              f"(state: {reply['state']})")
    else:
        print(f"# campaign {args.campaign} is already terminal "
              f"(state: {reply['state']})")
    return 0


def _cmd_service_drain(args) -> int:
    _service_client(args).drain(grace_s=args.grace)
    print(f"# drain requested (grace {args.grace:.0f}s)")
    return 0


def service_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="refine-service",
        description="Persistent multi-tenant campaign service: a durable "
        "queue served to refine-worker processes, with per-tenant quotas, "
        "priorities, checkpoint/restart recovery and chi-squared "
        "auto-validation of every drained campaign.",
    )
    _add_version(parser)
    sub = parser.add_subparsers(dest="verb", required=True)

    p = sub.add_parser("serve", help="run the campaign service")
    p.add_argument("--listen", metavar="HOST:PORT", default="127.0.0.1:0",
                   help="bind address (port 0 picks a free port)")
    p.add_argument("--queue", required=True, metavar="PATH",
                   help="durable campaign queue (SQLite; created if "
                   "missing; reopening recovers interrupted campaigns)")
    p.add_argument("--db", default=None, metavar="PATH",
                   help="results database: experiments stream in live, "
                   "validation verdicts and baselines land here")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="per-campaign checkpoint root (restart resumes "
                   "unfinished campaigns from here)")
    p.add_argument("--checkpoint-every", type=int,
                   default=DEFAULT_CHECKPOINT_EVERY)
    p.add_argument("--lease-timeout", type=float, default=60.0)
    p.add_argument("--chunk-size", type=int, default=None,
                   help="experiments per leased task (default: auto)")
    p.add_argument("--tenant-quota", type=int, default=None,
                   help="max live campaigns per tenant (default 8)")
    p.add_argument("--max-active", type=int, default=1,
                   help="campaigns served to the worker pool at once")
    p.add_argument("--grace", type=float, default=30.0,
                   help="drain grace period for SIGTERM/SIGINT and the "
                   "drain verb")
    p.add_argument("--soak", action="store_true",
                   help="soak mode: keep the queue topped up with seeded "
                   "fuzz campaigns mining for outcome-distribution "
                   "divergences")
    p.add_argument("--soak-seed", type=int, default=0x5EED0EF1)
    p.add_argument("--soak-n", type=int, default=None,
                   help="experiments per soak cell (default 24)")
    p.add_argument("--soak-backlog", type=int, default=2,
                   help="soak campaigns to keep live in the queue")
    p.add_argument("--artifacts", default=None, metavar="DIR",
                   help="file soak divergences here as reducer inputs")
    p.add_argument("--events", default=None,
                   help="append JSONL telemetry events to this file")
    p.add_argument("-q", "--quiet", action="store_true")
    p.set_defaults(func=_cmd_service_serve)

    p = sub.add_parser("status", help="one campaign's state and progress")
    p.add_argument("address", metavar="HOST:PORT")
    p.add_argument("campaign", type=int)
    p.set_defaults(func=_cmd_service_status)

    p = sub.add_parser("list", help="queue snapshot")
    p.add_argument("address", metavar="HOST:PORT")
    p.add_argument("--tenant", default=None)
    p.set_defaults(func=_cmd_service_list)

    p = sub.add_parser("cancel", help="cancel a campaign")
    p.add_argument("address", metavar="HOST:PORT")
    p.add_argument("campaign", type=int)
    p.set_defaults(func=_cmd_service_cancel)

    p = sub.add_parser("drain", help="graceful service shutdown")
    p.add_argument("address", metavar="HOST:PORT")
    p.add_argument("--grace", type=float, default=30.0)
    p.set_defaults(func=_cmd_service_drain)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"refine-service: error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed early (e.g. ``refine-service list ... | head``);
        # detach stdout so the interpreter's shutdown flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def report_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="refine-report",
        description="Run a campaign and render the paper's figures/tables.",
    )
    _add_version(parser)
    parser.add_argument("-n", "--samples", type=int, default=120)
    parser.add_argument("-w", "--workloads", default="all")
    parser.add_argument("--seed", type=int, default=0x5EED0EF1)
    parser.add_argument(
        "--artifact", default="all",
        choices=["figure4", "figure5", "table4", "table5", "table6", "all"],
    )
    parser.add_argument("--fault-models", default=None,
                        metavar="SPEC[,SPEC...]",
                        help="instead of the paper artifacts, render a "
                        "Figure-4-style outcome comparison per fault model "
                        "(tools that cannot host a model are skipped)")
    args = parser.parse_args(argv)

    sources = workload_sources()
    if args.workloads != "all":
        sources = {w: sources[w] for w in args.workloads.split(",")}
    names = list(sources)
    tools = list(TOOL_ORDER)

    if args.fault_models is not None:
        from repro.fi.models import parse_fault_model, resolve_fault_model
        from repro.fi.tools import TOOL_CLASSES
        from repro.reporting import render_model_comparison

        try:
            models = [
                parse_fault_model(s).spec
                for s in args.fault_models.split(",")
            ]
        except CampaignError as exc:
            print(f"refine-report: error: {exc}", file=sys.stderr)
            return 2
        matrices = {}
        for model in models:
            resolved = resolve_fault_model(model)
            supported = []
            for t in tools:
                try:
                    resolved.check_tool(TOOL_CLASSES[t])
                except CampaignError:
                    continue
                supported.append(t)
            matrices[model] = run_matrix(
                sources, supported, args.samples, args.seed,
                fault_model=model,
            )
        print(render_model_comparison(matrices, names, tools))
        return 0

    matrix = run_matrix(sources, tools, args.samples, args.seed)
    out: list[str] = []
    if args.artifact in ("figure4", "all"):
        out.append(render_figure4(matrix, names, tools))
    if args.artifact in ("figure5", "all"):
        out.append(render_figure5(matrix, names))
    if args.artifact in ("table4", "all") and "AMG2013" in names:
        out.append(render_table4(matrix))
    if args.artifact in ("table5", "all"):
        out.append(render_table5(matrix, names))
    if args.artifact in ("table6", "all"):
        out.append(render_table6(matrix, names, tools))
    print("\n\n".join(out))
    return 0


def opt_main(argv: list[str] | None = None) -> int:
    """``refine-opt``: run IR pass pipelines on textual IR (or MiniC)."""
    parser = argparse.ArgumentParser(
        prog="refine-opt",
        description="Parse IR text (or compile MiniC with --minic), run an "
        "optimization pipeline, and print the resulting IR.",
    )
    _add_version(parser)
    parser.add_argument("file", help="input file ('-' for stdin)")
    parser.add_argument("-O", dest="opt", default="O2",
                        choices=["O0", "O1", "O2"])
    parser.add_argument("--minic", action="store_true",
                        help="treat the input as MiniC source, not IR text")
    parser.add_argument("--llfi", action="store_true",
                        help="apply LLFI instrumentation after optimizing")
    parser.add_argument("--verify", action="store_true",
                        help="verify the module after every pass")
    args = parser.parse_args(argv)

    from repro.frontend import compile_source
    from repro.ir import format_module, parse_module, verify_module
    from repro.irpasses import optimize_module

    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    if args.minic:
        module = compile_source(source, "cli")
    else:
        module = parse_module(source)
    verify_module(module)
    optimize_module(module, args.opt, verify_each=args.verify)
    if args.llfi:
        llfi_instrument(module, FIConfig())
        verify_module(module)
    print(format_module(module), end="")
    return 0


def fuzz_main(argv: list[str] | None = None) -> int:
    """``refine-fuzz``: differential fuzzing of the compiler pipeline."""
    from repro.testing import GenConfig, ORACLES, run_fuzz
    from repro.testing.fuzz import DEFAULT_ARTIFACTS_DIR
    from repro.testing.oracles import (
        check_workload_engine_equivalence,
        check_workload_fault_model_equivalence,
        check_workload_scheduler_equivalence,
        check_workload_zero_interference,
    )
    from repro.workloads import workload_names

    parser = argparse.ArgumentParser(
        prog="refine-fuzz",
        description="Generate random IR programs and cross-check the "
        "reference interpreter, the O0/O2 pipelines, and REFINE's "
        "zero-interference property on each.  Failures are written to the "
        "artifacts directory with a delta-debugged minimal repro and a "
        "one-line replay command.",
    )
    _add_version(parser)
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign base seed; program i is derived from "
                        "(seed, i), so any failure replays with --start i")
    parser.add_argument("--count", type=int, default=100,
                        help="number of programs to generate")
    parser.add_argument("--start", type=int, default=0,
                        help="first program index (for replaying a failure)")
    parser.add_argument("--max-insts", type=int,
                        default=GenConfig.max_insts,
                        help="approximate instruction budget per program")
    parser.add_argument("--oracle", action="append", default=None,
                        choices=sorted(ORACLES),
                        help="oracle(s) to run (repeatable; default: all)")
    parser.add_argument("--artifacts", default=DEFAULT_ARTIFACTS_DIR,
                        help="directory for failure artifacts")
    parser.add_argument("--no-reduce", action="store_true",
                        help="skip delta-debugging failing modules")
    parser.add_argument("--check-workloads", action="store_true",
                        help="also run the zero-interference oracle on "
                        "every registered MiniC workload")
    parser.add_argument("--snapshot-interval", type=int, default=None,
                        metavar="N",
                        help="with --check-workloads/--check-engines, also "
                        "cross-check the snapshot fast path "
                        "(N = snapshot interval, 0 = auto)")
    parser.add_argument("--check-engines", action="store_true",
                        help="also check fast-engine vs reference-engine "
                        "equivalence on every registered MiniC workload")
    parser.add_argument("--check-schedules", action="store_true",
                        help="also check that trigger-ordered campaigns are "
                        "bit-identical to index-ordered ones on every "
                        "registered MiniC workload (all tools)")
    parser.add_argument("--check-fault-models", action="store_true",
                        help="also check engine- and schedule-equivalence "
                        "under every registered fault model on every "
                        "registered MiniC workload")
    parser.add_argument("--fault-models", default=None,
                        metavar="SPEC[,SPEC...]",
                        help="restrict the fault-model pass to these specs "
                        "(implies --check-fault-models)")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)
    if args.snapshot_interval is not None and args.snapshot_interval < 0:
        print("refine-fuzz: error: --snapshot-interval must be >= 0",
              file=sys.stderr)
        return 2
    if args.count < 0 or args.start < 0:
        print("refine-fuzz: error: --count/--start must be >= 0",
              file=sys.stderr)
        return 2
    if args.max_insts < 1:
        print("refine-fuzz: error: --max-insts must be >= 1", file=sys.stderr)
        return 2

    oracles = tuple(args.oracle) if args.oracle else tuple(sorted(ORACLES))
    config = (
        None
        if args.max_insts == GenConfig.max_insts
        else GenConfig(max_insts=args.max_insts)
    )

    failed = False
    if args.check_workloads:
        for name in workload_names():
            divergence = check_workload_zero_interference(
                name, snapshot_interval=args.snapshot_interval
            )
            if divergence is None:
                if not args.quiet:
                    print(f"# zero-interference {name}: OK", file=sys.stderr)
            else:
                failed = True
                print(f"refine-fuzz: zero-interference FAILED for {name}:",
                      file=sys.stderr)
                print(divergence.describe(), file=sys.stderr)
    if args.check_engines:
        for name in workload_names():
            divergence = check_workload_engine_equivalence(
                name, snapshot_interval=args.snapshot_interval
            )
            if divergence is None:
                if not args.quiet:
                    print(f"# engine-equivalence {name}: OK", file=sys.stderr)
            else:
                failed = True
                print(f"refine-fuzz: engine-equivalence FAILED for {name}:",
                      file=sys.stderr)
                print(divergence.describe(), file=sys.stderr)
    if args.check_schedules:
        for name in workload_names():
            divergence = check_workload_scheduler_equivalence(name)
            if divergence is None:
                if not args.quiet:
                    print(f"# schedule-equivalence {name}: OK",
                          file=sys.stderr)
            else:
                failed = True
                print(f"refine-fuzz: schedule-equivalence FAILED for {name}:",
                      file=sys.stderr)
                print(divergence.describe(), file=sys.stderr)
    if args.check_fault_models or args.fault_models is not None:
        from repro.fi.models import parse_fault_model

        models = None
        if args.fault_models is not None:
            try:
                models = tuple(
                    parse_fault_model(s).spec
                    for s in args.fault_models.split(",")
                )
            except CampaignError as exc:
                print(f"refine-fuzz: error: {exc}", file=sys.stderr)
                return 2
        for name in workload_names():
            divergence = check_workload_fault_model_equivalence(
                name, models=models
            )
            if divergence is None:
                if not args.quiet:
                    print(f"# fault-model-equivalence {name}: OK",
                          file=sys.stderr)
            else:
                failed = True
                print(
                    f"refine-fuzz: fault-model-equivalence FAILED for "
                    f"{name}:", file=sys.stderr,
                )
                print(divergence.describe(), file=sys.stderr)

    def progress(i, stats):
        if not args.quiet and (i + 1 - args.start) % 50 == 0:
            print(
                f"# {i + 1 - args.start}/{args.count} programs, "
                f"{len(stats.failures)} failure(s)",
                file=sys.stderr, flush=True,
            )

    try:
        stats = run_fuzz(
            base_seed=args.seed,
            count=args.count,
            start=args.start,
            oracles=oracles,
            config=config,
            artifacts_dir=args.artifacts,
            reduce=not args.no_reduce,
            progress=progress,
        )
    except ReproError as exc:
        print(f"refine-fuzz: error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(f"# {stats.summary()}", file=sys.stderr)
    for failure in stats.failures:
        print(f"refine-fuzz: FAILURE at index {failure.index} "
              f"[{failure.oracle}]: {failure.detail}", file=sys.stderr)
        if failure.reduced_path:
            print(f"  reduced repro ({failure.reduced_instructions} "
                  f"instructions): {failure.reduced_path}", file=sys.stderr)
        elif failure.module_path:
            print(f"  module: {failure.module_path}", file=sys.stderr)
        print(f"  replay: {failure.repro}", file=sys.stderr)
    return 0 if stats.ok and not failed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(campaign_main())
