"""Exception hierarchy for the REFINE reproduction.

Every error raised by the package derives from :class:`ReproError` so callers
can catch the whole family at once.  Machine traps (the faults a real CPU
would raise) form their own sub-hierarchy under :class:`MachineTrap` because
the fault-injection campaign treats them as *observations* (crash outcomes)
rather than programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class FrontendError(ReproError):
    """Base class for MiniC frontend failures."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        if line:
            message = f"{line}:{col}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid token in MiniC source."""


class ParseError(FrontendError):
    """Syntactically invalid MiniC source."""


class SemaError(FrontendError):
    """Semantically invalid MiniC source (type errors, undefined names)."""


class IRError(ReproError):
    """Malformed IR construction or use."""


class VerifierError(IRError):
    """IR failed structural verification."""


class PassError(ReproError):
    """An IR or machine pass could not be applied."""


class BackendError(ReproError):
    """Code generation failure (instruction selection, register allocation)."""


class LinkError(ReproError):
    """Binary loading/linking failure (undefined symbols, duplicate names)."""


class CampaignError(ReproError):
    """Fault-injection campaign configuration or orchestration error."""


class WorkloadError(ReproError):
    """Unknown or misconfigured workload."""


class DistError(ReproError):
    """Distributed campaign service failure (wire protocol violation,
    unreachable coordinator, or a worker/coordinator contract breach)."""


class DistConnectionError(DistError):
    """Transport-level failure: peer unreachable, connection refused, or a
    socket torn mid-conversation.  Distinguished from plain
    :class:`DistError` (a *protocol*-level rejection, which is fatal)
    because connection loss is the one retryable failure — the worker's
    reconnect loop backs off and redials on this and only this."""


class ServiceError(DistError):
    """Persistent campaign-service failure (queue corruption, quota or
    admission violation, lifecycle contract breach).  A subclass of
    :class:`DistError` because the service is the long-lived face of the
    distributed layer — callers catching the dist family catch this too."""


class StatsError(ReproError):
    """Invalid statistical computation request."""


class ResultsDBError(ReproError):
    """Results-database failure (schema mismatch, malformed ingest input,
    or a query against data the store does not hold)."""


# ---------------------------------------------------------------------------
# Machine traps: runtime events observed while executing a binary.  These are
# *expected* under fault injection and are converted into CRASH outcomes.
# ---------------------------------------------------------------------------

class MachineTrap(ReproError):
    """Base class for architectural traps raised by the simulated CPU."""

    #: short mnemonic used in fault logs
    kind = "trap"

    def __init__(self, message: str = "", pc: int = -1) -> None:
        self.pc = pc
        super().__init__(message or self.kind)


class SegmentationFault(MachineTrap):
    """Access to unmapped or guard memory."""

    kind = "segfault"


class StackOverflow(MachineTrap):
    """Stack pointer escaped the stack region."""

    kind = "stack-overflow"


class IllegalInstruction(MachineTrap):
    """Executed an undecodable or invalid instruction (e.g. bad jump target)."""

    kind = "illegal-instruction"


class DivideByZero(MachineTrap):
    """Integer division or remainder by zero."""

    kind = "divide-by-zero"


class ExecutionTimeout(MachineTrap):
    """Dynamic instruction budget exhausted (the paper's 10x timeout rule)."""

    kind = "timeout"


class AbnormalExit(MachineTrap):
    """Program terminated with a non-zero exit code."""

    kind = "abnormal-exit"

    def __init__(self, code: int, pc: int = -1) -> None:
        self.code = code
        super().__init__(f"exit code {code}", pc)
