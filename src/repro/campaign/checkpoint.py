"""Checkpointed campaign execution: atomic persistence of partial results.

A paper-scale matrix (44,856 experiments) takes long enough that a killed
batch job must not lose its progress.  Because every experiment's seed is a
pure function of ``(base_seed, workload, tool, global_index)``, a campaign
can be checkpointed as *(partial result, set of completed indices)* and
resumed by simply skipping the completed indices — the re-run is
bit-identical to an uninterrupted campaign.

Checkpoints are written atomically (write to a temp file in the same
directory, then :func:`os.replace`), so a crash mid-write leaves the
previous checkpoint intact and a reader never observes a torn file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.io import result_from_dict, result_to_dict
from repro.campaign.results import CampaignResult
from repro.errors import CampaignError

CHECKPOINT_VERSION = 1

#: Default number of completed experiments between checkpoint writes.
DEFAULT_CHECKPOINT_EVERY = 50


@dataclass
class CampaignCheckpoint:
    """Everything needed to resume a campaign exactly where it stopped."""

    workload: str
    tool: str
    n: int
    base_seed: int
    keep_records: bool
    completed: set[int] = field(default_factory=set)
    partial: CampaignResult | None = None
    #: fault-model spec the campaign runs under; pre-model checkpoints
    #: deserialize to the single-bit default.
    fault_model: str = "single-bit"

    @property
    def remaining(self) -> list[int]:
        """Global experiment indices still to run, in ascending order."""
        return [i for i in range(self.n) if i not in self.completed]

    def matches(
        self, workload: str, tool: str, n: int, base_seed: int,
        keep_records: bool, fault_model: str = "single-bit",
    ) -> None:
        """Raise :class:`CampaignError` unless this checkpoint belongs to the
        campaign described by the arguments (resuming under different
        parameters would silently corrupt counts)."""
        want = (workload, tool, n, base_seed, keep_records, fault_model)
        have = (self.workload, self.tool, self.n, self.base_seed,
                self.keep_records, self.fault_model)
        names = ("workload", "tool", "n", "base_seed", "keep_records",
                 "fault_model")
        for name, w, h in zip(names, want, have):
            if w != h:
                raise CampaignError(
                    f"checkpoint mismatch: {name} is {h!r} in the checkpoint "
                    f"but {w!r} in this campaign"
                )


def _encode_indices(indices: set[int]) -> list[list[int]]:
    """Run-length encode a sparse index set as ``[start, stop)`` ranges —
    a 1068-experiment checkpoint stays a few bytes, not a few kilobytes."""
    ranges: list[list[int]] = []
    for i in sorted(indices):
        if ranges and ranges[-1][1] == i:
            ranges[-1][1] = i + 1
        else:
            ranges.append([i, i + 1])
    return ranges


def _decode_indices(ranges: list[list[int]]) -> set[int]:
    out: set[int] = set()
    for start, stop in ranges:
        out.update(range(start, stop))
    return out


def checkpoint_to_dict(ckpt: CampaignCheckpoint) -> dict:
    return {
        "version": CHECKPOINT_VERSION,
        "workload": ckpt.workload,
        "tool": ckpt.tool,
        "n": ckpt.n,
        "base_seed": ckpt.base_seed,
        "keep_records": ckpt.keep_records,
        "completed": _encode_indices(ckpt.completed),
        "partial": None if ckpt.partial is None else result_to_dict(ckpt.partial),
        "fault_model": ckpt.fault_model,
    }


def checkpoint_from_dict(data: dict) -> CampaignCheckpoint:
    if data.get("version") != CHECKPOINT_VERSION:
        raise CampaignError(
            f"unsupported checkpoint version {data.get('version')!r}"
        )
    try:
        partial = data["partial"]
        return CampaignCheckpoint(
            workload=data["workload"],
            tool=data["tool"],
            n=data["n"],
            base_seed=data["base_seed"],
            keep_records=data["keep_records"],
            completed=_decode_indices(data["completed"]),
            partial=None if partial is None else result_from_dict(partial),
            fault_model=data.get("fault_model", "single-bit"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CampaignError(f"malformed checkpoint: {exc}") from exc


def save_checkpoint(ckpt: CampaignCheckpoint, path: str | Path) -> None:
    """Atomically persist a checkpoint (temp file + rename)."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(checkpoint_to_dict(ckpt)), encoding="utf-8")
    os.replace(tmp, path)


def load_checkpoint(path: str | Path) -> CampaignCheckpoint:
    """Load a checkpoint; raises :class:`CampaignError` if unreadable."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"cannot load checkpoint: {exc}") from exc
    return checkpoint_from_dict(data)


def try_load_checkpoint(path: str | Path | None) -> CampaignCheckpoint | None:
    """Load a checkpoint if ``path`` names an existing file, else ``None``.

    A missing file means "fresh campaign"; an *unreadable* file still raises,
    because silently restarting a half-done campaign wastes cluster hours."""
    if path is None or not Path(path).exists():
        return None
    return load_checkpoint(path)
