"""Campaign telemetry: a JSONL event log and an in-process stats aggregator.

Production-scale FI studies (the paper's 44,856 experiments ran in batches
on a cluster) need per-run observability: what happened, when, and how fast.
Two cooperating pieces provide it:

* :class:`EventLog` — an append-only JSON-Lines log.  Every event is one
  JSON object per line with a monotonically increasing ``seq`` and a wall
  clock ``ts``, so logs from long campaigns can be tailed, merged and
  analysed offline.
* :class:`CampaignStats` — a cheap in-process aggregator (running outcome
  frequencies, experiments/sec, ETA) that the CLI renders as live progress.

Event schema (all events carry ``seq``, ``ts`` and ``event``):

========================  =====================================================
event                     extra fields
========================  =====================================================
``campaign_start``        ``workload``, ``tool``, ``n``, ``base_seed``,
                          ``fault_model`` (canonical :mod:`repro.fi.models`
                          spec; absent in pre-model logs = single-bit),
                          ``resumed`` (experiments restored from a checkpoint)
``experiment``            ``workload``, ``tool``, ``index``, ``seed``,
                          ``outcome``, ``cycles``, ``steps``, ``trap``,
                          ``exit_code``, ``engine`` (execution engine name),
                          ``snapshot_hit`` (``true``/``false`` when the
                          snapshot fast path was on, else ``null``) and
                          ``fault`` (the full fault-site record: ``func``,
                          ``pc``, ``instr_text``, ``operand_index``,
                          ``operand_desc``, ``bit`` (``null`` for faults
                          with no single bit position), ``dynamic_index``,
                          tag-encoded ``value_before``/``value_after``,
                          plus the fault-model fields ``model``, ``bits``,
                          ``address`` and ``dwell``).
                          The sequential runner adds ``wall_s``; the
                          parallel runner re-emits these per chunk (tagged
                          ``chunk``), the distributed coordinator per task
                          (tagged ``task``, ``worker``) — consumers counting
                          experiments must pick one family.  This is the
                          stream :mod:`repro.resultsdb` ingests.
``checkpoint``            ``path``, ``completed``, ``n``
``worker_start``          ``chunk``, ``size`` (parallel runner)
``chunk_done``            ``chunk``, ``size``, ``completed``, ``n``
``campaign_finish``       ``workload``, ``tool``, ``counts``,
                          ``total_cycles``, ``total_steps``,
                          ``total_candidates``, ``golden_output`` (the
                          stream is self-contained: a results store can
                          rebuild the full ``CampaignResult`` from the log
                          alone); ``fault_model``,
                          ``schedule`` (``index``/``trigger``) and
                          ``phases`` (wall-clock breakdown:
                          ``translate_s``, ``prefix_s``, ``fork_s``,
                          ``tail_s``, ``classify_s``); with the trigger
                          schedule also ``scheduler`` (final
                          ``scheduler_stats`` counters); the sequential
                          runner adds ``wall_s``, ``experiments_per_sec``
``snapshot_golden``       ``workload``, ``tool``, ``interval``, ``snapshots``,
                          ``pages``, ``reused`` (loaded from the shared
                          store instead of recorded), ``wall_s`` — one per
                          golden snapshot run (see :mod:`repro.snapshot`)
``snapshot_stats``        ``workload``, ``tool``, ``hits``, ``misses``,
                          ``hit_rate``, ``instructions_skipped``,
                          ``instructions_executed``, ``snapshots``,
                          ``pages_stored``, ``golden_reused``,
                          ``golden_wall_s``, ``interval``; cumulative per
                          campaign from the sequential runner, per-chunk
                          (with a ``chunk`` field) from parallel workers
``scheduler_stats``       ``workload``, ``tool``, ``experiments``, ``forks``,
                          ``fork_hits``, ``scratch``, ``rejoins``,
                          ``sync_states``, ``cursor_steps``,
                          ``prefix_steps_saved``, ``tail_steps_saved`` —
                          trigger-schedule counters (see
                          :mod:`repro.campaign.schedule`); cumulative from
                          the sequential runner (emitted after the cursor
                          and again after the last tail), per-chunk
                          (``chunk``) from parallel workers, per-task
                          (``task``, ``worker``) from the coordinator
========================  =====================================================

The distributed coordinator (:mod:`repro.dist`) emits its own family on
top — one stream records the whole cluster campaign:

========================  =====================================================
event                     extra fields
========================  =====================================================
``dist_start``            ``cells``, ``total``, ``resumed``,
                          ``lease_timeout_s``
``cell_start``            ``workload``, ``tool``, ``n``, ``base_seed``,
                          ``fault_model``, ``resumed``, ``resumed_counts``
``worker_join``           ``worker``, ``procs``
``lease``                 ``task``, ``worker``, ``workload``, ``tool``,
                          ``size``, ``attempt``
``task_done``             ``task``, ``worker``, ``workload``, ``tool``,
                          ``size``, ``duplicate``; when not a duplicate also
                          ``attempt``, ``completed``, ``n``,
                          ``completed_total``, ``total``, ``counts``
``task_requeue``          ``task``, ``worker``, ``reason``
                          (``timeout``/``disconnect``/``failed``),
                          ``attempt``, ``delay_s``
``worker_leave``          ``worker``
``cell_finish``           ``workload``, ``tool``, ``counts``,
                          ``total_cycles``, ``total_steps``,
                          ``total_candidates``, ``golden_output``,
                          ``schedule``, ``fault_model``,
                          ``phases`` (worker-side breakdown
                          summed over tasks) and, with the trigger
                          schedule, ``scheduler``
``dist_finish``           ``cells``, ``total``, ``wall_s``,
                          ``experiments_per_sec``
========================  =====================================================
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, IO

from repro.campaign.classify import OUTCOME_ORDER, Outcome


class EventLog:
    """Append-only JSONL event sink.

    ``path`` opens (and appends to) a file; ``stream`` writes to an existing
    file-like object instead.  A custom ``clock`` makes timestamps
    deterministic in tests.  Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        stream: IO[str] | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if path is not None and stream is not None:
            raise ValueError("pass either path or stream, not both")
        self._owns_stream = path is not None
        if path is not None:
            p = Path(path)
            if p.parent and not p.parent.exists():
                p.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(p, "a", encoding="utf-8")
        else:
            self._stream = stream
        self._clock = clock
        self._seq = 0

    def emit(self, event: str, **fields) -> None:
        """Write one event line (no-op after :meth:`close`)."""
        if self._stream is None:
            return
        record = {"seq": self._seq, "ts": self._clock(), "event": event}
        record.update(fields)
        self._stream.write(json.dumps(record) + "\n")
        self._stream.flush()
        self._seq += 1

    def close(self) -> None:
        if self._stream is not None and self._owns_stream:
            self._stream.close()
        self._stream = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict]:
    """Load every event from a JSONL log written by :class:`EventLog`."""
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


class CampaignStats:
    """Running statistics over a campaign's experiment stream.

    Feed it one :meth:`note` per finished experiment (or a bulk
    :meth:`note_batch` from a parallel chunk) and it tracks outcome
    frequencies, throughput and an ETA.  ``clock`` defaults to
    :func:`time.monotonic`; inject a fake for deterministic tests.
    """

    def __init__(
        self,
        total: int,
        done: int = 0,
        counts: dict[Outcome, int] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.done = done
        self.counts: dict[Outcome, int] = {o: 0 for o in Outcome}
        if counts:
            self.counts.update(counts)
        #: per-worker completed-experiment counts (distributed campaigns)
        self.workers: dict[str, int] = {}
        #: snapshot fast-path counters (from ``snapshot_stats`` events)
        self.snap_hits = 0
        self.snap_misses = 0
        self.snap_skipped = 0
        #: trigger-scheduler counters (from ``scheduler_stats`` events)
        self.sched_forks = 0
        self.sched_rejoins = 0
        self.sched_steps_saved = 0
        self._restored = done  # restored from a checkpoint, not run here
        self._clock = clock
        self._started = clock()

    def note(self, outcome: Outcome) -> None:
        self.counts[outcome] = self.counts.get(outcome, 0) + 1
        self.done += 1

    def note_batch(self, counts: dict[Outcome, int]) -> None:
        for outcome, k in counts.items():
            self.counts[outcome] = self.counts.get(outcome, 0) + k
            self.done += k

    def note_snapshots(self, fields: dict, accumulate: bool = False) -> None:
        """Fold one ``snapshot_stats`` event in.  Sequential-runner events
        are cumulative (replace); parallel per-chunk events are deltas
        (``accumulate=True``)."""
        hits = int(fields.get("hits", 0))
        misses = int(fields.get("misses", 0))
        skipped = int(fields.get("instructions_skipped", 0))
        if accumulate:
            self.snap_hits += hits
            self.snap_misses += misses
            self.snap_skipped += skipped
        else:
            self.snap_hits = hits
            self.snap_misses = misses
            self.snap_skipped = skipped

    def note_scheduler(self, fields: dict, accumulate: bool = False) -> None:
        """Fold one ``scheduler_stats`` event in.  Sequential-runner events
        are cumulative (replace); parallel per-chunk and distributed
        per-task events are independent schedulers (``accumulate=True``)."""
        forks = int(fields.get("forks", 0))
        rejoins = int(fields.get("rejoins", 0))
        saved = int(fields.get("prefix_steps_saved", 0)) + int(
            fields.get("tail_steps_saved", 0)
        )
        if accumulate:
            self.sched_forks += forks
            self.sched_rejoins += rejoins
            self.sched_steps_saved += saved
        else:
            self.sched_forks = forks
            self.sched_rejoins = rejoins
            self.sched_steps_saved = saved

    def note_worker(self, worker: str, k: int) -> None:
        """Attribute ``k`` completed experiments to a distributed worker."""
        self.workers[worker] = self.workers.get(worker, 0) + k

    def worker_rates(self) -> dict[str, float]:
        """Per-worker experiments/sec since this aggregator started."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return {w: 0.0 for w in self.workers}
        return {w: k / elapsed for w, k in self.workers.items()}

    @property
    def elapsed(self) -> float:
        return self._clock() - self._started

    def rate(self) -> float:
        """Experiments per second since this aggregator started (counts only
        work done in-process, not experiments restored from a checkpoint)."""
        elapsed = self.elapsed
        fresh = self.done - self._restored
        return fresh / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self) -> float | None:
        """Estimated seconds to completion, or ``None`` before any data."""
        rate = self.rate()
        if rate <= 0:
            return None
        return max(0.0, self.total - self.done) / rate

    def render(self) -> str:
        """One-line progress summary for live terminal display."""
        pct = 100.0 * self.done / self.total if self.total else 100.0
        outcome_bits = " ".join(
            f"{o.value}={self.counts.get(o, 0)}" for o in OUTCOME_ORDER
        )
        eta = self.eta_seconds()
        if eta is None:
            eta_text = "ETA --:--"
        else:
            minutes, seconds = divmod(int(eta + 0.5), 60)
            eta_text = f"ETA {minutes:d}:{seconds:02d}"
        line = (
            f"{self.done}/{self.total} ({pct:5.1f}%) | {outcome_bits} | "
            f"{self.rate():6.1f} exp/s | {eta_text}"
        )
        if self.workers:
            rates = self.worker_rates()
            per_worker = " ".join(
                f"{w}:{rates[w]:.1f}/s" for w in sorted(self.workers)
            )
            line += f" | {len(self.workers)}w[{per_worker}]"
        served = self.snap_hits + self.snap_misses
        if served:
            line += (
                f" | snap {100.0 * self.snap_hits / served:.0f}% hit, "
                f"{self.snap_skipped:,} skipped"
            )
        if self.sched_forks:
            line += (
                f" | sched {self.sched_forks} forks, "
                f"{self.sched_rejoins} rejoins, "
                f"{self.sched_steps_saved:,} steps saved"
            )
        return line
