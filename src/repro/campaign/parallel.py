"""Multi-process campaign execution.

The paper runs its 44,856 experiments on a cluster, fully subscribing each
node (Appendix A.4).  This runner partitions a campaign's experiment
indices across worker processes; each worker compiles/profiles its own tool
instance (processes share nothing) and returns a partial
:class:`CampaignResult`, which :func:`repro.campaign.io.merge_results`
aggregates.  Seeds are derived from the *global* experiment index, so a
parallel campaign is bit-identical to the sequential one regardless of
worker count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.campaign.classify import Outcome, classify
from repro.campaign.io import merge_results
from repro.campaign.results import CampaignResult, ExperimentRecord
from repro.campaign.runner import DEFAULT_SEED
from repro.errors import CampaignError
from repro.fi.config import FIConfig
from repro.fi.tools import TOOL_CLASSES
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class _WorkerTask:
    """Everything a worker process needs to run a slice of experiments."""

    tool_name: str
    source: str
    workload: str
    opt_level: str
    fi_funcs: str
    fi_instrs: str
    base_seed: int
    indices: tuple[int, ...]
    keep_records: bool


def _run_slice(task: _WorkerTask) -> CampaignResult:
    """Executed inside a worker process."""
    config = FIConfig(funcs=task.fi_funcs, instrs=task.fi_instrs)
    tool = TOOL_CLASSES[task.tool_name](
        task.source, task.workload, config=config, opt_level=task.opt_level
    )
    profile = tool.profile
    result = CampaignResult(
        workload=task.workload,
        tool=task.tool_name,
        n=len(task.indices),
        counts={o: 0 for o in Outcome},
        golden_output=profile.golden_output,
        total_candidates=profile.total_candidates,
    )
    for i in task.indices:
        seed = derive_seed(task.base_seed, task.workload, task.tool_name, i)
        run = tool.inject(seed)
        outcome = classify(run.result, profile.golden_output)
        result.counts[outcome] += 1
        result.total_cycles += run.cycles
        result.total_steps += run.result.steps
        if task.keep_records:
            result.records.append(
                ExperimentRecord(
                    seed=seed,
                    outcome=outcome,
                    cycles=run.cycles,
                    steps=run.result.steps,
                    trap=run.result.trap,
                    exit_code=run.result.exit_code,
                    fault=run.result.fault,
                )
            )
    return result


def run_campaign_parallel(
    tool_name: str,
    source: str,
    workload: str,
    n: int,
    workers: int = 2,
    base_seed: int = DEFAULT_SEED,
    config: FIConfig | None = None,
    opt_level: str = "O2",
    keep_records: bool = False,
) -> CampaignResult:
    """Run ``n`` experiments across ``workers`` processes.

    Produces counts identical to the sequential
    :func:`repro.campaign.run_campaign` with the same ``base_seed``.
    """
    if n <= 0:
        raise CampaignError("campaign needs n >= 1 experiments")
    if workers <= 0:
        raise CampaignError("workers must be positive")
    if tool_name not in TOOL_CLASSES:
        raise CampaignError(f"unknown tool {tool_name!r}")
    config = config or FIConfig()

    workers = min(workers, n)
    slices = [tuple(range(w, n, workers)) for w in range(workers)]
    tasks = [
        _WorkerTask(
            tool_name=tool_name,
            source=source,
            workload=workload,
            opt_level=opt_level,
            fi_funcs=config.funcs,
            fi_instrs=config.instrs,
            base_seed=base_seed,
            indices=indices,
            keep_records=keep_records,
        )
        for indices in slices
        if indices
    ]
    if len(tasks) == 1:
        return _run_slice(tasks[0])
    with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
        parts = list(pool.map(_run_slice, tasks))
    return merge_results(parts)
