"""Multi-process campaign execution.

The paper runs its 44,856 experiments on a cluster, fully subscribing each
node (Appendix A.4).  This runner partitions a campaign's experiment
indices into **chunked sub-slices** (several chunks per worker), submits
them to a process pool, and consumes completions with ``as_completed`` —
so progress callbacks, telemetry events and checkpoints all happen
mid-flight rather than only at the end.  Each worker compiles/profiles its
own tool instance (processes share nothing) and returns a partial
:class:`CampaignResult`; parts are merged **in chunk order** by
:func:`repro.campaign.io.merge_results`, so a parallel campaign is
bit-identical to the sequential one regardless of worker count.

Seeds are derived from the *global* experiment index, which also makes
checkpoint resume trivial: completed indices are simply excluded from the
next run's chunks.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.campaign.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    CampaignCheckpoint,
    save_checkpoint,
    try_load_checkpoint,
)
from repro.campaign.events import EventLog
from repro.campaign.io import experiment_event_fields, merge_results
from repro.campaign.results import CampaignResult
from repro.campaign.runner import DEFAULT_SEED, _fresh_result, run_experiment
from repro.campaign.schedule import (
    PhaseTimes,
    TriggerScheduler,
    resolve_trigger_order,
    validate_schedule,
)
from repro.errors import CampaignError
from repro.fi.config import FIConfig
from repro.fi.models import resolve_fault_model
from repro.fi.tools import TOOL_CLASSES
from repro.campaign.classify import Outcome

#: Target number of chunks handed to each worker.  More than one, so that
#: completions trickle in and progress/checkpointing can happen mid-flight;
#: not so many that per-chunk compile/profile overhead dominates.
CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class SliceTask:
    """Everything a worker process needs to run a slice of experiments.

    Shared by the multi-process runner here and the distributed workers in
    :mod:`repro.dist` — both execute campaign slices through the exact same
    machinery, so every execution mode produces bit-identical results.
    """

    tool_name: str
    source: str
    workload: str
    opt_level: str
    fi_enabled: bool
    fi_funcs: str
    fi_instrs: str
    base_seed: int
    indices: tuple[int, ...]
    keep_records: bool
    opcode_faults: float
    chunk: int
    #: snapshot fast path: ``None`` = off, ``0`` = auto interval.  The dir
    #: points at the shared on-disk store so concurrent workers reuse one
    #: golden run per binary (see :mod:`repro.snapshot`).
    snapshot_interval: int | None = None
    snapshot_dir: str | None = None
    #: execution engine name (``None`` = environment/default)
    engine: str | None = None
    #: experiment visiting order within the slice (``index`` or ``trigger``)
    schedule: str = "index"
    #: canonical fault-model spec (repro.fi.models); the single-bit default
    #: keeps pickled/JSON tasks from older coordinators valid.
    fault_model: str = "single-bit"


def run_slice(task: SliceTask) -> CampaignResult:
    """Run one slice of a campaign (executed inside a worker process).

    Per-experiment records are always collected here — the parent needs
    them to emit ``experiment`` telemetry events and feed write-through
    result sinks (:mod:`repro.resultsdb`) — and are stripped by the parent
    after emission when the campaign did not ask for ``keep_records``.
    """
    config = FIConfig(
        enabled=task.fi_enabled, funcs=task.fi_funcs, instrs=task.fi_instrs
    )
    tool = TOOL_CLASSES[task.tool_name](
        task.source, task.workload, config=config, opt_level=task.opt_level,
        opcode_faults=task.opcode_faults, engine=task.engine,
        fault_model=task.fault_model,
    )
    if task.snapshot_interval is not None:
        tool.enable_snapshots(
            interval=task.snapshot_interval, store_dir=task.snapshot_dir,
            coarse=task.schedule == "trigger",
        )
    result = _fresh_result(tool, len(task.indices))
    if task.schedule == "trigger":
        # The slice is a contiguous trigger range; run it along one golden
        # cursor.  Phase/scheduler breakdowns ride back on the pickled
        # result so the parent can aggregate and emit telemetry.
        sched = TriggerScheduler(tool)
        for rec in sched.run_batch(task.base_seed, task.indices):
            result.add(rec, keep_record=True)
        result.phase_times = sched.phases.as_dict()
        result.scheduler_stats = sched.stats.as_dict()
    else:
        for i in task.indices:
            result.add(
                run_experiment(tool, task.base_seed, i), keep_record=True
            )
    if tool.snapshots is not None:
        # Piggy-backed on the pickled result so the parent can surface the
        # worker's hit rate as a snapshot_stats event.
        result.snapshot_stats = tool.snapshots.stats.as_dict()
    return result


def run_campaign_parallel(
    tool_name: str,
    source: str,
    workload: str,
    n: int,
    workers: int = 2,
    base_seed: int = DEFAULT_SEED,
    config: FIConfig | None = None,
    opt_level: str = "O2",
    keep_records: bool = False,
    opcode_faults: float = 0.0,
    progress: Callable[[int, int], None] | None = None,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    events: EventLog | None = None,
    chunk_size: int | None = None,
    snapshot_interval: int | None = None,
    snapshot_dir: str | Path | None = None,
    engine: str | None = None,
    schedule: str = "index",
    fault_model: str | None = None,
) -> CampaignResult:
    """Run ``n`` experiments across ``workers`` processes.

    Produces counts identical to the sequential
    :func:`repro.campaign.run_campaign` with the same ``base_seed`` — the
    full tool configuration (``config``, ``opcode_faults``) is forwarded to
    the workers, so the parallel fault model is exactly the sequential one.

    ``progress(done, n)`` fires after every completed chunk.  With
    ``checkpoint_path``, the merged partial result is atomically persisted
    roughly every ``checkpoint_every`` experiments (and on interruption),
    and an existing checkpoint is resumed by excluding its completed
    indices from the new chunks.

    ``snapshot_interval`` (``None`` = off, ``0`` = auto) turns on the
    golden-run snapshot fast path inside every worker; ``snapshot_dir``
    (default: a ``snapshots`` directory next to the checkpoint) is the
    store the workers share, so the golden run is recorded once per binary
    no matter the worker count.

    ``schedule="trigger"`` re-shards the campaign from index ranges to
    **contiguous trigger ranges**: the parent pre-resolves every remaining
    experiment's trigger (a pure function of its seed), sorts by
    ``(trigger, index)``, and cuts chunks along that order, so each worker's
    golden cursor sweeps one compact window of the timeline.  Results stay
    keyed by global experiment index and the merge accepts out-of-order
    parts, so the outcome is bit-identical to the index schedule.
    """
    validate_schedule(schedule)
    if n <= 0:
        raise CampaignError("campaign needs n >= 1 experiments")
    if workers <= 0:
        raise CampaignError("workers must be positive")
    if checkpoint_every <= 0:
        raise CampaignError("checkpoint_every must be positive")
    if tool_name not in TOOL_CLASSES:
        raise CampaignError(f"unknown tool {tool_name!r}")
    cls = TOOL_CLASSES[tool_name]
    if not 0.0 <= opcode_faults <= 1.0:
        raise CampaignError("opcode_faults must be a probability")
    if opcode_faults and not cls.supports_opcode_faults:
        # Fail in the parent with the same error the sequential runner's
        # tool constructor raises, instead of a pickled worker traceback.
        raise CampaignError(
            f"{cls.name} operates above the instruction encoding and "
            "cannot model OP-code corruption"
        )
    # Same fail-fast rule for the fault model: parse and tool-compatibility
    # errors surface in the parent, and workers get the canonical spec.
    model = resolve_fault_model(fault_model)
    model.check_tool(cls)
    config = config or FIConfig()
    if (
        snapshot_interval is not None
        and snapshot_dir is None
        and checkpoint_path is not None
    ):
        snapshot_dir = Path(checkpoint_path).parent / "snapshots"

    phases = PhaseTimes()
    scheduler_totals: dict[str, int] = {}
    completed: set[int] = set()
    prior: CampaignResult | None = None
    ckpt = try_load_checkpoint(checkpoint_path)
    if ckpt is not None:
        ckpt.matches(
            workload, tool_name, n, base_seed, keep_records,
            fault_model=model.spec,
        )
        completed = set(ckpt.completed)
        prior = ckpt.partial
    remaining = [i for i in range(n) if i not in completed]

    if events is not None:
        events.emit(
            "campaign_start", workload=workload, tool=tool_name, n=n,
            base_seed=base_seed, resumed=len(completed), workers=workers,
            resumed_counts={} if prior is None
            else {o.value: k for o, k in prior.counts.items()},
            fault_model=model.spec,
        )

    parts: dict[int, CampaignResult] = {}

    def _merged() -> CampaignResult | None:
        ordered = ([] if prior is None else [prior])
        ordered.extend(parts[ci] for ci in sorted(parts))
        if not ordered:
            return None
        merged = merge_results(ordered)
        merged.n = n  # n is the campaign size, not just what has finished
        # Chunks complete out of order (and resume reshuffles them); global
        # experiment index restores the sequential runner's record order.
        merged.records.sort(key=lambda rec: rec.index)
        return merged

    def _save() -> None:
        save_checkpoint(
            CampaignCheckpoint(
                workload=workload,
                tool=tool_name,
                n=n,
                base_seed=base_seed,
                keep_records=keep_records,
                completed=set(completed),
                partial=_merged(),
                fault_model=model.spec,
            ),
            checkpoint_path,
        )
        if events is not None:
            events.emit(
                "checkpoint", path=str(checkpoint_path),
                completed=len(completed), n=n,
            )

    def _finish(result: CampaignResult) -> CampaignResult:
        if events is not None:
            events.emit(
                "campaign_finish", workload=workload, tool=tool_name,
                counts={o.value: result.frequency(o) for o in Outcome},
                total_cycles=result.total_cycles,
                total_steps=result.total_steps,
                total_candidates=result.total_candidates,
                golden_output=list(result.golden_output),
                schedule=schedule,
                fault_model=model.spec,
                phases=phases.as_dict(),
                **(
                    {"scheduler": dict(scheduler_totals)}
                    if scheduler_totals else {}
                ),
            )
        return result

    if not remaining:
        # Resuming an already-finished campaign: nothing to run.
        if prior is None:
            raise CampaignError(
                "checkpoint claims completion but holds no partial result"
            )
        return _finish(prior)

    if schedule == "trigger":
        # Pre-resolve every remaining experiment's trigger in the parent and
        # re-order the work list along the golden timeline; contiguous
        # chunks of this list are trigger ranges, so each worker's cursor
        # covers one compact window instead of the whole run.  The parent
        # tool is also the fail-fast check that the tool/engine combination
        # supports trigger scheduling (raises here, not as a pickled
        # worker traceback).
        t0 = time.perf_counter()
        order_tool = cls(
            source, workload, config=config, opt_level=opt_level,
            opcode_faults=opcode_faults, engine=engine, fault_model=model,
        )
        TriggerScheduler(order_tool)
        remaining = [
            i for _, i in resolve_trigger_order(order_tool, base_seed, remaining)
        ]
        phases.translate_s += time.perf_counter() - t0

    workers = min(workers, len(remaining))
    if chunk_size is None:
        chunk_size = max(
            1, math.ceil(len(remaining) / (workers * CHUNKS_PER_WORKER))
        )
    elif chunk_size <= 0:
        raise CampaignError("chunk_size must be positive")
    chunks = [
        tuple(remaining[lo:lo + chunk_size])
        for lo in range(0, len(remaining), chunk_size)
    ]
    tasks = [
        SliceTask(
            tool_name=tool_name,
            source=source,
            workload=workload,
            opt_level=opt_level,
            fi_enabled=config.enabled,
            fi_funcs=config.funcs,
            fi_instrs=config.instrs,
            base_seed=base_seed,
            indices=indices,
            keep_records=keep_records,
            opcode_faults=opcode_faults,
            chunk=ci,
            snapshot_interval=snapshot_interval,
            snapshot_dir=None if snapshot_dir is None else str(snapshot_dir),
            engine=engine,
            schedule=schedule,
            fault_model=model.spec,
        )
        for ci, indices in enumerate(chunks)
    ]

    since_checkpoint = 0

    def _note_done(task: SliceTask, part: CampaignResult) -> None:
        """Fold one finished chunk in: emit telemetry (one ``experiment``
        event per record, then the chunk summary), strip records the
        campaign did not ask to keep, and checkpoint.  Stripping happens
        before the part can reach a checkpoint, so resumed partials match
        the requested ``keep_records``."""
        nonlocal since_checkpoint
        pt = getattr(part, "phase_times", None)
        if pt is not None:
            phases.accumulate(pt)
        sched_stats = getattr(part, "scheduler_stats", None)
        if sched_stats is not None:
            for key, val in sched_stats.items():
                scheduler_totals[key] = scheduler_totals.get(key, 0) + val
        if events is not None:
            for rec in part.records:
                events.emit(
                    "experiment", workload=workload, tool=tool_name,
                    chunk=task.chunk, **experiment_event_fields(rec),
                )
        if not keep_records:
            part.records = []
        parts[task.chunk] = part
        completed.update(task.indices)
        since_checkpoint += len(task.indices)
        if events is not None:
            events.emit(
                "chunk_done", chunk=task.chunk, size=len(task.indices),
                completed=len(completed), n=n,
                counts={o.value: part.frequency(o) for o in Outcome},
            )
            stats = getattr(part, "snapshot_stats", None)
            if stats is not None:
                events.emit(
                    "snapshot_stats", workload=workload, tool=tool_name,
                    chunk=task.chunk, **stats,
                )
            if sched_stats is not None:
                events.emit(
                    "scheduler_stats", workload=workload, tool=tool_name,
                    chunk=task.chunk, **sched_stats,
                )
        if checkpoint_path is not None and since_checkpoint >= checkpoint_every:
            _save()
            since_checkpoint = 0
        if progress is not None:
            progress(len(completed), n)

    if len(tasks) == 1:
        # One chunk: run in-process, skipping pool overhead.
        try:
            part = run_slice(tasks[0])
        except BaseException:
            if checkpoint_path is not None:
                _save()
            raise
        _note_done(tasks[0], part)
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
            futures = {pool.submit(run_slice, t): t for t in tasks}
            if events is not None:
                for t in tasks:
                    events.emit(
                        "worker_start", chunk=t.chunk, size=len(t.indices)
                    )
            try:
                for fut in as_completed(futures):
                    task = futures[fut]
                    _note_done(task, fut.result())
            except BaseException:
                # Interrupted (or a progress/worker failure): stop handing
                # out new chunks and persist everything that finished.
                for fut in futures:
                    fut.cancel()
                if checkpoint_path is not None:
                    _save()
                raise
    if checkpoint_path is not None and since_checkpoint:
        _save()
    return _finish(_merged())
