"""Trigger-ordered campaign scheduling with shared-prefix forking.

The snapshot fast path (PR 4) and the free-run engine (PR 5) made each
experiment cheap, but campaigns still visit experiments in *index* order:
triggers arrive in random positions along the golden timeline, so every
injection independently replays the golden prefix from its nearest
snapshot — the same instructions, thousands of times per cell.

Relyzer sorts its fault list by dynamic position; ZOFI forks the original
process at the injection point.  This module combines both ideas on top of
the existing machinery:

1. **Resolve** every experiment's trigger counter up front (a fault plan is
   a pure function of its seed) and sort the batch by ``(trigger, index)``.
2. **Advance one cursor CPU** monotonically along the golden run with the
   fast engine (:meth:`repro.engine.fast.FastEngine.run_cursor`).  Whenever
   the next block would cross a pending trigger, capture one cheap
   copy-on-write fork (:func:`repro.snapshot.state.capture_snapshot`) at
   the block entry; one fork covers every trigger inside that block.  The
   cursor never rewinds, so the whole batch pays O(one golden run) of
   prefix execution instead of O(sum of per-experiment trigger distances).
3. **Run each faulty tail** from its fork to completion, in trigger order.
4. **Golden rejoin**: the cursor also records full-state sync snapshots at
   interval multiples.  A faulty tail pauses at the same absolute step
   counts (:meth:`~repro.engine.fast.FastEngine.resume_synced`) and, once
   its architectural state (pc, flags, integer registers, bitwise float
   registers, all memory pages) equals the golden state at the same step,
   the rest of the run is *spliced* from the golden suffix instead of
   executed: equal state at equal step count implies identical future
   behaviour, and the tool counters are behaviourally inert once the
   single-shot fault has fired.  Outputs, counts, steps and exit code of a
   spliced result are bit-identical to running the tail out natively.

Bit-identity bar: every :class:`~repro.campaign.results.ExperimentRecord`
field except ``snapshot_hit`` (a fast-path provenance flag) matches the
index-ordered schedule exactly; ``total_cycles`` matches to float
summation order (same bar as the parallel runner).
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass

from repro.campaign.classify import classify
from repro.campaign.results import ExperimentRecord
from repro.errors import CampaignError
from repro.fi.tools import TIMEOUT_FACTOR, FITool
from repro.machine.cpu import ExecutionResult
from repro.snapshot.engine import GOLDEN_BUDGET, resolve_interval
from repro.snapshot.state import (
    PAGE_SIZE,
    CpuSnapshot,
    base_pages,
    capture_snapshot,
    restore_snapshot,
)
from repro.utils.rng import derive_seed

#: Valid ``--schedule`` values (index = historical order, trigger = sorted).
SCHEDULES = ("index", "trigger")

#: Rejoin-check thinning: check the first few sync points after the fork
#: densely (most convergent runs re-join within one interval), then back
#: off geometrically so divergent runs pay almost nothing.
REJOIN_DENSE = 2
REJOIN_GROWTH = 4
REJOIN_MAX_CHECKS = 8

#: Stop attempting full-memory comparisons for a tail after this many
#: expensive near-misses (registers matched, memory did not).
REJOIN_MAX_MEM_MISSES = 2


@dataclass
class PhaseTimes:
    """Wall-clock breakdown of one campaign's execution phases."""

    translate_s: float = 0.0  #: compile/profile + trigger resolution
    prefix_s: float = 0.0     #: golden cursor execution (minus fork capture)
    fork_s: float = 0.0       #: fork + sync-state snapshot capture
    tail_s: float = 0.0       #: faulty tail execution (fork to completion)
    classify_s: float = 0.0   #: outcome classification

    def as_dict(self) -> dict:
        return {
            "translate_s": round(self.translate_s, 4),
            "prefix_s": round(self.prefix_s, 4),
            "fork_s": round(self.fork_s, 4),
            "tail_s": round(self.tail_s, 4),
            "classify_s": round(self.classify_s, 4),
        }

    def accumulate(self, fields: dict) -> None:
        """Fold another breakdown (e.g. a parallel chunk's) into this one."""
        self.translate_s += fields.get("translate_s", 0.0)
        self.prefix_s += fields.get("prefix_s", 0.0)
        self.fork_s += fields.get("fork_s", 0.0)
        self.tail_s += fields.get("tail_s", 0.0)
        self.classify_s += fields.get("classify_s", 0.0)


@dataclass
class SchedulerStats:
    """Counters behind the ``scheduler_stats`` telemetry event."""

    experiments: int = 0
    #: forks captured along the cursor / tails served from one
    forks: int = 0
    fork_hits: int = 0
    #: safety-net fallbacks through the ordinary inject path
    scratch: int = 0
    #: tails spliced onto the golden suffix after provable re-convergence
    rejoins: int = 0
    #: full-state reference snapshots recorded along the cursor
    sync_states: int = 0
    cursor_steps: int = 0
    #: golden-prefix instructions not re-executed thanks to forks
    prefix_steps_saved: int = 0
    #: tail instructions not re-executed thanks to golden rejoin
    tail_steps_saved: int = 0

    def as_dict(self) -> dict:
        return {
            "experiments": self.experiments,
            "forks": self.forks,
            "fork_hits": self.fork_hits,
            "scratch": self.scratch,
            "rejoins": self.rejoins,
            "sync_states": self.sync_states,
            "cursor_steps": self.cursor_steps,
            "prefix_steps_saved": self.prefix_steps_saved,
            "tail_steps_saved": self.tail_steps_saved,
        }

    def accumulate(self, fields: dict) -> None:
        """Fold another scheduler's counters (e.g. a parallel chunk's or a
        dist worker's) into this one."""
        for key, val in fields.items():
            if hasattr(self, key):
                setattr(self, key, getattr(self, key) + val)


def validate_schedule(schedule: str) -> None:
    if schedule not in SCHEDULES:
        raise CampaignError(
            f"unknown schedule {schedule!r}; choose from {SCHEDULES}"
        )


def resolve_trigger_order(
    tool: FITool, base_seed: int, indices
) -> list[tuple[int, int]]:
    """``(trigger, index)`` pairs for a batch, sorted by ``(trigger, index)``.

    Shared by the scheduler, the parallel runner's chunker and the dist
    coordinator's sharder, so every layer agrees on the timeline order.
    """
    pairs = []
    for index in indices:
        seed = derive_seed(base_seed, tool.workload, tool.name, index)
        plan = tool.plan_from_seed(seed)
        pairs.append((plan.target_index, index))
    pairs.sort()
    return pairs


def _pack_fregs(fregs) -> bytes:
    """Bitwise image of the float registers (NaN payloads, signed zeros)."""
    return struct.pack(f"<{len(fregs)}d", *fregs)


class TriggerScheduler:
    """Run a batch of experiments in trigger order along one golden cursor.

    One instance serves one (tool, batch); :meth:`run_batch` yields
    :class:`ExperimentRecord` objects in trigger order.  Requires the fast
    engine (the cursor's fork stops and the tails' exact-step sync pauses
    are fast-engine features) and a tool with a snapshot trigger counter.
    """

    def __init__(self, tool: FITool, events=None) -> None:
        counter = getattr(type(tool), "_SNAPSHOT_COUNTER", None)
        if counter is None:
            raise CampaignError(
                f"{tool.name} does not define a snapshot trigger counter; "
                "the trigger schedule cannot pre-resolve its injection points"
            )
        if not hasattr(tool.engine, "run_cursor"):
            raise CampaignError(
                f"--schedule trigger requires the fast engine "
                f"(tool is running on {tool.engine.name!r})"
            )
        self.tool = tool
        self.events = events
        self.counter = counter
        self.stats = SchedulerStats()
        self.phases = PhaseTimes()
        self._forks: dict[int, CpuSnapshot] = {}
        self._fork_users: dict[int, int] = {}
        self._sync_states: dict[int, CpuSnapshot] = {}
        self._triggers: list[int] = []
        self._pend_i = 0
        self._prev_capture: CpuSnapshot | None = None
        self._hook_s = 0.0
        #: one pooled CPU serves every tail (restore is in-place, so the
        #: fast engine's instantiated blocks survive across experiments)
        self._tail_cpu = None
        self._mem_template: bytes | None = None
        #: plan of the tail currently resuming (rejoin gates on its window)
        self._tail_plan = None

    # -- cursor -------------------------------------------------------------

    def _fork_hook(self, cpu, pc: int, upto: int):
        """Capture one fork covering every pending trigger ``<= upto``.

        Called by the cursor at a block entry whose counter extent reaches
        the next pending trigger; the CPU is fully synced and the counter
        is still strictly below every pending trigger, so the snapshot is
        a valid resume point for all of them.
        """
        t0 = time.perf_counter()
        snap = capture_snapshot(cpu, pc, prev=self._prev_capture,
                                base=self._base)
        self._prev_capture = snap
        triggers = self._triggers
        i = self._pend_i
        while i < len(triggers) and triggers[i] <= upto:
            self._forks[triggers[i]] = snap
            i += 1
        self._pend_i = i
        self.stats.forks += 1
        self._hook_s += time.perf_counter() - t0
        return triggers[i] if i < len(triggers) else None

    def _sync_hook(self, cpu, pc: int) -> None:
        """Record the golden reference state at an interval multiple."""
        t0 = time.perf_counter()
        snap = capture_snapshot(cpu, pc, prev=self._prev_capture,
                                base=self._base)
        self._prev_capture = snap
        self._sync_states[snap.steps] = snap
        self.stats.sync_states += 1
        self._hook_s += time.perf_counter() - t0

    def _run_cursor(self) -> None:
        tool = self.tool
        profile = tool.profile
        self._base = base_pages(tool.program)
        self._interval = resolve_interval(0, profile.steps)
        syncs = list(range(self._interval, profile.steps, self._interval))

        t0 = time.perf_counter()
        cpu = tool._make_cpu(None)
        result = tool.engine.run_cursor(
            cpu,
            budget=GOLDEN_BUDGET,
            counter=self.counter,
            first_stop=self._triggers[0] if self._triggers else None,
            fork_hook=self._fork_hook,
            syncs=syncs,
            sync_hook=self._sync_hook,
        )
        wall = time.perf_counter() - t0
        self.phases.fork_s += self._hook_s
        self.phases.prefix_s += wall - self._hook_s

        if result.trap is not None or result.exit_status != 0:
            raise CampaignError(
                f"{tool.name}: golden cursor run of {tool.workload!r} failed "
                f"(trap={result.trap}, exit={result.exit_code})"
            )
        if tuple(result.output) != profile.golden_output:
            raise CampaignError(
                f"{tool.name}: golden cursor run of {tool.workload!r} "
                "diverged from the profiling run — nondeterministic workload?"
            )
        if result.steps != profile.steps:
            raise CampaignError(
                f"{tool.name}: golden cursor of {tool.workload!r} ran "
                f"{result.steps} steps, profile says {profile.steps}"
            )
        self.stats.cursor_steps = result.steps
        self._g_steps = result.steps
        self._g_counts = result.counts
        self._g_exit = result.exit_code
        self._prev_capture = None  # release the capture chain head

    # -- golden rejoin ------------------------------------------------------

    def _tail_syncs(self, fork_steps: int) -> list[int]:
        """Thinned schedule of rejoin checkpoints for a tail forked at
        ``fork_steps``: the first :data:`REJOIN_DENSE` interval multiples
        after the fork, then geometrically growing strides."""
        interval = self._interval
        k = fork_steps // interval + 1
        out: list[int] = []
        dense = REJOIN_DENSE
        stride = 1
        while k * interval < self._g_steps and len(out) < REJOIN_MAX_CHECKS:
            out.append(k * interval)
            if dense > 0:
                dense -= 1
                k += 1
            else:
                stride *= REJOIN_GROWTH
                k += stride
        return out

    def _on_sync(self, cpu, pc: int) -> bool:
        """Rejoin test at one sync point of a faulty tail.

        Returns True (stop; splice) only when the tail's full architectural
        state equals the golden state at the same absolute step count.
        Before the fault has fired the tail *is* the golden run, so a match
        is vacuous and splicing would skip the injection — never stop then.
        Likewise while a dwell window is still open (stuck-at models): the
        fault keeps re-applying, so the tail may not rejoin — and PINFI may
        not be treated as detached — until the window closes.
        """
        if cpu.fault is None:
            return False
        plan = self._tail_plan
        if plan is not None and plan.last_index > plan.target_index:
            count = getattr(cpu, "_" + self.counter)
            if count < plan.last_index:
                return False
        if self._mem_misses >= REJOIN_MAX_MEM_MISSES:
            return False
        ref = self._sync_states.get(cpu.steps)
        if ref is None:
            return False
        if pc != ref.pc or cpu.flags != ref.flags:
            return False
        if tuple(cpu.iregs) != ref.iregs:
            return False
        if _pack_fregs(cpu.fregs) != _pack_fregs(ref.fregs):
            return False
        # bytes-vs-bytes slice compares hit CPython's memcmp fast path
        # (memoryview comparison is a per-element loop — far slower).
        mem = bytes(cpu.mem)
        pages = ref.pages
        for i, clean in enumerate(self._base):
            off = i * PAGE_SIZE
            if mem[off:off + PAGE_SIZE] != pages.get(i, clean):
                self._mem_misses += 1
                return False
        self._rejoin_ref = ref
        return True

    def _splice(self, cpu, ref: CpuSnapshot) -> ExecutionResult:
        """Complete a re-converged tail from the golden suffix.

        The tail's state at step ``S = ref.steps`` is bitwise equal to the
        golden run's, so its remaining execution is the golden remainder:
        counts gain the golden per-pc deltas past ``S``, output gains the
        golden lines past ``S``, and the run ends at the golden step count
        with the golden exit code and no trap.  PINFI's frozen attach-time
        accounting (``counts_attached``, ``attached_candidates``) is
        untouched — the fault always fires (and PINFI detaches) before a
        rejoin is admissible.
        """
        golden_output = self.tool.profile.golden_output
        result = ExecutionResult()
        result.trap = None
        result.trap_pc = -1
        result.exit_code = self._g_exit
        result.output = list(cpu.output) + list(golden_output[len(ref.output):])
        result.steps = self._g_steps
        result.fault = cpu.fault
        g_counts = self._g_counts
        ref_counts = ref.counts
        result.counts = [
            c + g_counts[i] - ref_counts[i] for i, c in enumerate(cpu.counts)
        ]
        result.counts_attached = cpu.counts_attached
        result.attached_candidates = cpu.attached_candidates
        self.stats.tail_steps_saved += self._g_steps - ref.steps
        return result

    # -- tails --------------------------------------------------------------

    def _tail_cpu_for(self, plan):
        """The pooled tail CPU, reset to pristine state and armed with
        ``plan``.

        ``restore_snapshot`` overwrites registers, counters, output and
        the fork's dirty pages in place; this reset covers everything it
        assumes or does not touch — pristine memory for the untouched
        pages, no fired fault, and the tool's plan re-armed.
        """
        cpu = self._tail_cpu
        if cpu is None:
            cpu = self.tool._make_cpu(plan)
            self._tail_cpu = cpu
            self._mem_template = bytes(cpu.mem)
            return cpu
        cpu.mem[:] = self._mem_template
        cpu.fault = None
        counter = self.counter
        if counter == "refine_count":
            cpu.arm_refine(plan)
        elif counter == "pin_count":
            cpu.attach_pinfi(plan)
        else:
            cpu.arm_llfi(plan)
        return cpu

    def _run_tail(self, trigger: int, index: int, seed: int) -> ExperimentRecord:
        tool = self.tool
        fork = self._forks.get(trigger)
        t0 = time.perf_counter()
        if fork is None:
            # Safety net: the cursor ended without covering this trigger
            # (should not happen for triggers within the candidate count);
            # fall back to the ordinary injection path.
            self.stats.scratch += 1
            run = tool.inject(seed)
            result = run.result
            cycles = run.cycles
            served = False
        else:
            plan = tool.plan_from_seed(seed)
            self._tail_plan = plan
            cpu = self._tail_cpu_for(plan)
            restore_snapshot(cpu, fork)
            self._mem_misses = 0
            self._rejoin_ref = None
            result = tool.engine.resume_synced(
                cpu, fork.pc, tool.profile.steps * TIMEOUT_FACTOR,
                self._tail_syncs(fork.steps), self._on_sync,
            )
            if result is None:
                result = self._splice(cpu, self._rejoin_ref)
                self.stats.rejoins += 1
            cycles = tool._cycles(cpu, result)
            self.stats.fork_hits += 1
            self.stats.prefix_steps_saved += fork.steps
            served = True
        t1 = time.perf_counter()
        outcome = classify(result, tool.profile.golden_output)
        t2 = time.perf_counter()
        self.phases.tail_s += t1 - t0
        self.phases.classify_s += t2 - t1
        return ExperimentRecord(
            seed=seed,
            outcome=outcome,
            cycles=cycles,
            steps=result.steps,
            trap=result.trap,
            exit_code=result.exit_code,
            fault=result.fault,
            index=index,
            engine=tool.engine.name,
            snapshot_hit=served,
        )

    # -- batch driver -------------------------------------------------------

    def run_batch(self, base_seed: int, indices):
        """Yield one :class:`ExperimentRecord` per index, in trigger order.

        The first yield happens only after the whole golden cursor has run
        (forks for every trigger must exist before any tail does), so a
        consumer checkpointing between yields loses at most the cursor on
        interruption — never a completed experiment.
        """
        tool = self.tool
        indices = list(indices)
        if not indices:
            return
        t0 = time.perf_counter()
        ordered = resolve_trigger_order(tool, base_seed, indices)
        self.phases.translate_s += time.perf_counter() - t0
        self.stats.experiments += len(ordered)

        self._triggers = sorted({trigger for trigger, _ in ordered})
        self._pend_i = 0
        self._forks.clear()
        self._sync_states.clear()
        users: dict[int, int] = {}
        for trigger, _ in ordered:
            users[trigger] = users.get(trigger, 0) + 1

        self._run_cursor()
        if self.events is not None:
            self.events.emit(
                "scheduler_stats", workload=tool.workload, tool=tool.name,
                **self.stats.as_dict(),
            )

        for trigger, index in ordered:
            seed = derive_seed(base_seed, tool.workload, tool.name, index)
            yield self._run_tail(trigger, index, seed)
            users[trigger] -= 1
            if not users[trigger]:
                # Every experiment at this trigger is done; release the
                # fork (page bytes shared with later snapshots survive).
                self._forks.pop(trigger, None)

        if self.events is not None:
            self.events.emit(
                "scheduler_stats", workload=tool.workload, tool=tool.name,
                **self.stats.as_dict(),
            )
