"""Campaign persistence: JSON serialization of results and fault logs.

Large FI studies run in batches (the paper's 44,856 experiments ran on a
cluster); results must round-trip losslessly so analysis and reporting can
happen offline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.campaign.classify import Outcome
from repro.campaign.results import CampaignResult, ExperimentRecord
from repro.errors import CampaignError
from repro.machine.cpu import FaultRecord

FORMAT_VERSION = 3

#: Older formats we can still read.  Version 1 stored fault values as
#: ``repr()`` strings (lossy: an int came back as the string "42"); loading
#: it keeps the raw strings rather than guessing at types.  Version 2
#: predates pluggable fault models: faults carried only a single ``bit``
#: and no model/mask/address/dwell fields; loading fills the single-bit
#: defaults.  Version 3 adds those fields plus the campaign's
#: ``fault_model`` spec.
_READABLE_VERSIONS = (1, 2, FORMAT_VERSION)


def _value_to_dict(value: object) -> dict | None:
    """Tag-encode a fault value so it round-trips losslessly through JSON.

    Floats travel as ``float.hex()`` strings: bit-exact, and safe for
    ``nan``/``inf`` which bare JSON numbers cannot represent portably.
    """
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise CampaignError(
            f"cannot serialize fault value of type {type(value).__name__}"
        )
    if isinstance(value, int):
        return {"kind": "int", "value": value}
    if isinstance(value, float):
        return {"kind": "float", "hex": value.hex()}
    return {"kind": "str", "value": value}


def _value_from_dict(data: object) -> object:
    if data is None:
        return None
    if isinstance(data, str):  # legacy v1: repr() string, kept as-is
        return data
    kind = data.get("kind")
    if kind == "int":
        return int(data["value"])
    if kind == "float":
        return float.fromhex(data["hex"])
    if kind == "str":
        return data["value"]
    raise CampaignError(f"unknown fault value kind {kind!r}")


def _fault_to_dict(fault: FaultRecord | None) -> dict | None:
    if fault is None:
        return None
    return {
        "tool": fault.tool,
        "dynamic_index": fault.dynamic_index,
        "pc": fault.pc,
        "func": fault.func,
        "block": fault.block,
        "instr_text": fault.instr_text,
        "operand_index": fault.operand_index,
        "operand_desc": fault.operand_desc,
        "bit": fault.bit,
        "value_before": _value_to_dict(fault.value_before),
        "value_after": _value_to_dict(fault.value_after),
        # v3 fault-model fields (repro.fi.models): lossless for multi-bit
        # masks, memory addresses and stuck-at dwell windows.
        "model": fault.model,
        "bits": None if fault.bits is None else list(fault.bits),
        "address": fault.address,
        "dwell": fault.dwell,
    }


def _fault_from_dict(data: dict | None) -> FaultRecord | None:
    if data is None:
        return None
    bits = data.get("bits")
    return FaultRecord(
        tool=data["tool"],
        dynamic_index=data["dynamic_index"],
        pc=data["pc"],
        func=data["func"],
        block=data["block"],
        instr_text=data["instr_text"],
        operand_index=data["operand_index"],
        operand_desc=data["operand_desc"],
        bit=data["bit"],
        value_before=_value_from_dict(data["value_before"]),
        value_after=_value_from_dict(data["value_after"]),
        # v1/v2 logs predate fault models: single-bit defaults.
        model=data.get("model", "single-bit"),
        bits=None if bits is None else tuple(bits),
        address=data.get("address"),
        dwell=data.get("dwell", 1),
    )


def experiment_event_fields(record: ExperimentRecord) -> dict:
    """The ``experiment`` telemetry event's per-record payload.

    One definition shared by the sequential runner, the parallel runner and
    the distributed coordinator, so every execution mode writes the same
    event schema and :mod:`repro.resultsdb` can ingest any stream.
    """
    return {
        "index": record.index,
        "seed": record.seed,
        "outcome": record.outcome.value,
        "cycles": record.cycles,
        "steps": record.steps,
        "trap": record.trap,
        "exit_code": record.exit_code,
        "engine": record.engine,
        "snapshot_hit": record.snapshot_hit,
        "fault": _fault_to_dict(record.fault),
    }


#: Optional statistic blocks piggy-backed on a partial result by the slice
#: runners (plain JSON dicts), forwarded so the distributed coordinator can
#: aggregate worker-side snapshot/scheduler telemetry.
_RESULT_STATS_ATTRS = ("snapshot_stats", "phase_times", "scheduler_stats")


def result_to_dict(result: CampaignResult) -> dict:
    """Serialize one campaign result (records included when kept)."""
    data = {
        "workload": result.workload,
        "tool": result.tool,
        "n": result.n,
        "counts": {o.value: result.frequency(o) for o in Outcome},
        "total_cycles": result.total_cycles,
        "total_steps": result.total_steps,
        "golden_output": list(result.golden_output),
        "total_candidates": result.total_candidates,
        "fault_model": result.fault_model,
        "records": [
            {
                "index": rec.index,
                "seed": rec.seed,
                "outcome": rec.outcome.value,
                "cycles": rec.cycles,
                "steps": rec.steps,
                "trap": rec.trap,
                "exit_code": rec.exit_code,
                "engine": rec.engine,
                "snapshot_hit": rec.snapshot_hit,
                "fault": _fault_to_dict(rec.fault),
            }
            for rec in result.records
        ],
    }
    for extra in _RESULT_STATS_ATTRS:
        value = getattr(result, extra, None)
        if value is not None:
            data[extra] = value
    return data


def result_from_dict(data: dict) -> CampaignResult:
    result = CampaignResult(
        workload=data["workload"],
        tool=data["tool"],
        n=data["n"],
        counts={Outcome(k): v for k, v in data["counts"].items()},
        total_cycles=data["total_cycles"],
        total_steps=data["total_steps"],
        golden_output=tuple(data["golden_output"]),
        total_candidates=data["total_candidates"],
        fault_model=data.get("fault_model", "single-bit"),
    )
    for rec in data.get("records", ()):
        result.records.append(
            ExperimentRecord(
                index=rec.get("index", -1),
                seed=rec["seed"],
                outcome=Outcome(rec["outcome"]),
                cycles=rec["cycles"],
                steps=rec["steps"],
                trap=rec["trap"],
                exit_code=rec["exit_code"],
                engine=rec.get("engine"),
                snapshot_hit=rec.get("snapshot_hit"),
                fault=_fault_from_dict(rec["fault"]),
            )
        )
    for extra in _RESULT_STATS_ATTRS:
        if extra in data:
            setattr(result, extra, data[extra])
    return result


def save_matrix(
    matrix: dict[tuple[str, str], CampaignResult], path: str | Path
) -> None:
    """Persist a campaign matrix to a JSON file."""
    payload = {
        "version": FORMAT_VERSION,
        "cells": [result_to_dict(res) for res in matrix.values()],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_matrix(path: str | Path) -> dict[tuple[str, str], CampaignResult]:
    """Load a campaign matrix saved by :func:`save_matrix`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"cannot load campaign matrix: {exc}") from exc
    if payload.get("version") not in _READABLE_VERSIONS:
        raise CampaignError(
            f"unsupported campaign file version {payload.get('version')!r}"
        )
    matrix = {}
    for cell in payload["cells"]:
        result = result_from_dict(cell)
        matrix[(result.workload, result.tool)] = result
    return matrix


def merge_results(
    parts: Iterable[CampaignResult],
    indices: Iterable[Iterable[int]] | None = None,
) -> CampaignResult:
    """Combine partial campaigns of the same (workload, tool) — the batch
    aggregation step of a cluster run.

    ``indices`` (parallel to ``parts``) gives each part's global experiment
    indices and enables **exact deduplication**: a part whose index set was
    already merged is dropped rather than double-counted.  At-least-once
    task delivery (a distributed worker whose lease expired may still
    finish and submit) makes duplicates normal, and because every
    experiment is a pure function of its global index, the duplicate part
    is provably identical to the one already merged.  Parts that overlap
    only *partially* cannot be reconciled from counts alone and raise.
    """
    parts = list(parts)
    if indices is not None:
        index_sets = [frozenset(ix) for ix in indices]
        if len(index_sets) != len(parts):
            raise CampaignError(
                f"merge got {len(parts)} parts but {len(index_sets)} "
                "index sets"
            )
        seen: set[int] = set()
        kept = []
        for part, ixs in zip(parts, index_sets):
            if len(ixs) != sum(part.counts.values()):
                raise CampaignError(
                    f"part tallies {sum(part.counts.values())} experiments "
                    f"but its index set has {len(ixs)}"
                )
            overlap = seen & ixs
            if not overlap:
                seen |= ixs
                kept.append(part)
            elif overlap != ixs:
                raise CampaignError(
                    "parts partially overlap in global experiment indices "
                    "and cannot be merged without double-counting"
                )
            # else: exact duplicate of already-merged indices — drop it
        parts = kept
    if not parts:
        raise CampaignError("cannot merge zero campaign parts")
    first = parts[0]
    for other in parts[1:]:
        if (other.workload, other.tool) != (first.workload, first.tool):
            raise CampaignError(
                "cannot merge campaigns of different (workload, tool)"
            )
        if other.golden_output != first.golden_output:
            raise CampaignError("golden outputs disagree between parts")
        if other.total_candidates != first.total_candidates:
            raise CampaignError(
                "total_candidates disagree between parts "
                f"({other.total_candidates} vs {first.total_candidates}); "
                "were the campaigns configured with the same FIConfig?"
            )
        if other.fault_model != first.fault_model:
            raise CampaignError(
                f"fault models disagree between parts ({other.fault_model!r} "
                f"vs {first.fault_model!r})"
            )
    merged = CampaignResult(
        workload=first.workload,
        tool=first.tool,
        n=sum(p.n for p in parts),
        counts={
            o: sum(p.frequency(o) for p in parts) for o in Outcome
        },
        total_cycles=sum(p.total_cycles for p in parts),
        total_steps=sum(p.total_steps for p in parts),
        golden_output=first.golden_output,
        total_candidates=first.total_candidates,
        fault_model=first.fault_model,
    )
    for p in parts:
        merged.records.extend(p.records)
    return merged
