"""Post-campaign analysis: correlating faults with source-level structure.

The paper motivates compiler-based FI with "access to source code
abstractions" (Table 1): unlike a binary tool, REFINE knows which source
function every fault site belongs to.  This module turns a campaign's fault
log into per-function and per-fault-target sensitivity breakdowns — the
analysis a resilience study would use to decide where to place detectors
(cf. the IPAS line of work the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.classify import OUTCOME_ORDER, Outcome
from repro.campaign.results import CampaignResult, ExperimentRecord
from repro.errors import CampaignError
from repro.stats.intervals import Interval, wilson_interval


@dataclass
class GroupSensitivity:
    """Outcome breakdown for one group (function, operand kind, bit range)."""

    key: str
    counts: dict[Outcome, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def frequency(self, outcome: Outcome) -> int:
        return self.counts.get(outcome, 0)

    def proportion(self, outcome: Outcome) -> float:
        return self.frequency(outcome) / self.total if self.total else 0.0

    def interval(self, outcome: Outcome, confidence: float = 0.95) -> Interval:
        return wilson_interval(self.frequency(outcome), self.total, confidence)


def _group_records(
    records: list[ExperimentRecord], key_of
) -> list[GroupSensitivity]:
    groups: dict[str, GroupSensitivity] = {}
    for rec in records:
        if rec.fault is None:
            continue
        key = key_of(rec)
        group = groups.get(key)
        if group is None:
            group = groups[key] = GroupSensitivity(key, {o: 0 for o in Outcome})
        group.counts[rec.outcome] += 1
    return sorted(
        groups.values(), key=lambda g: g.proportion(Outcome.CRASH), reverse=True
    )


def _require_records(result: CampaignResult) -> list[ExperimentRecord]:
    if not result.records:
        raise CampaignError(
            "sensitivity analysis needs a campaign run with keep_records=True"
        )
    return result.records


def by_function(result: CampaignResult) -> list[GroupSensitivity]:
    """Outcome breakdown per source function — the source-correlation
    capability binary-level tools lack."""
    return _group_records(_require_records(result), lambda r: r.fault.func)


def by_fault_model(result: CampaignResult) -> list[GroupSensitivity]:
    """Breakdown by injected fault model — one group per spec string.

    A single campaign runs one model, so this matters for results merged
    across campaigns (or reconstructed from a mixed-model store)."""
    return _group_records(_require_records(result), lambda r: r.fault.model)


def by_operand_kind(result: CampaignResult) -> list[GroupSensitivity]:
    """Breakdown by corrupted register kind (int / float / flags / value)."""

    def kind(rec: ExperimentRecord) -> str:
        desc = rec.fault.operand_desc
        return desc.split(":")[0]

    return _group_records(_require_records(result), kind)


def by_bit_range(
    result: CampaignResult, buckets: int = 8
) -> list[GroupSensitivity]:
    """Breakdown by flipped bit position (low mantissa bits vs sign/exponent
    and address high bits behave very differently).

    Fault models that corrupt more than one bit position at once (e.g.
    cache-line smears) record no single ``bit``; those faults degrade
    gracefully into one ``bits[n/a]`` group, which sorts after every
    numbered range.
    """
    if not 1 <= buckets <= 64:
        raise CampaignError("buckets must be in [1, 64]")
    width = 64 // buckets

    def bucket(rec: ExperimentRecord) -> str:
        if rec.fault.bit is None:
            return "bits[n/a]"
        lo = (rec.fault.bit // width) * width
        return f"bits[{lo:02d}-{min(lo + width - 1, 63):02d}]"

    groups = _group_records(_require_records(result), bucket)
    return sorted(groups, key=lambda g: g.key)


def render_sensitivity(
    groups: list[GroupSensitivity], title: str
) -> str:
    """Terminal rendering of a sensitivity breakdown."""
    lines = [f"== {title} ==",
             f"  {'group':24s} {'n':>6s} " +
             " ".join(f"{o.value:>8s}" for o in OUTCOME_ORDER)]
    for g in groups:
        row = " ".join(
            f"{g.proportion(o) * 100:7.1f}%" for o in OUTCOME_ORDER
        )
        lines.append(f"  {g.key:24s} {g.total:>6d} {row}")
    return "\n".join(lines)
