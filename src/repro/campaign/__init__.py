"""Campaign orchestration: experiments, classification, result aggregation,
checkpoint/resume and telemetry."""

from repro.campaign.analysis import (
    GroupSensitivity,
    by_bit_range,
    by_fault_model,
    by_function,
    by_operand_kind,
    render_sensitivity,
)
from repro.campaign.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    CampaignCheckpoint,
    load_checkpoint,
    save_checkpoint,
    try_load_checkpoint,
)
from repro.campaign.classify import OUTCOME_ORDER, Outcome, classify
from repro.campaign.events import CampaignStats, EventLog, read_events
from repro.campaign.io import (
    load_matrix,
    merge_results,
    result_from_dict,
    result_to_dict,
    save_matrix,
)
from repro.campaign.parallel import run_campaign_parallel
from repro.campaign.results import CampaignResult, ExperimentRecord
from repro.campaign.runner import (
    DEFAULT_SEED,
    PAPER_SAMPLES,
    make_tool,
    matrix_checkpoint_path,
    replay,
    run_campaign,
    run_experiment,
    run_matrix,
)
from repro.campaign.schedule import (
    SCHEDULES,
    PhaseTimes,
    SchedulerStats,
    TriggerScheduler,
    resolve_trigger_order,
    validate_schedule,
)

__all__ = [
    "GroupSensitivity",
    "by_bit_range",
    "by_fault_model",
    "by_function",
    "by_operand_kind",
    "render_sensitivity",
    "DEFAULT_CHECKPOINT_EVERY",
    "CampaignCheckpoint",
    "load_checkpoint",
    "save_checkpoint",
    "try_load_checkpoint",
    "CampaignStats",
    "EventLog",
    "read_events",
    "load_matrix",
    "merge_results",
    "result_from_dict",
    "result_to_dict",
    "save_matrix",
    "run_campaign_parallel",
    "OUTCOME_ORDER",
    "Outcome",
    "classify",
    "CampaignResult",
    "ExperimentRecord",
    "DEFAULT_SEED",
    "PAPER_SAMPLES",
    "make_tool",
    "matrix_checkpoint_path",
    "replay",
    "run_campaign",
    "run_experiment",
    "run_matrix",
    "SCHEDULES",
    "PhaseTimes",
    "SchedulerStats",
    "TriggerScheduler",
    "resolve_trigger_order",
    "validate_schedule",
]
