"""Campaign orchestration: many single-fault experiments per (workload, tool).

Each experiment is a pure function of ``(base_seed, workload, tool, index)``
via :func:`repro.utils.rng.derive_seed`, so campaigns are reproducible and
each tool samples independent fault coordinates (the paper runs independent
random campaigns per tool and compares the resulting outcome distributions).

That purity is also what makes campaigns *resumable*: a checkpoint is just
the partial result plus the set of completed global indices, and resuming
skips those indices — the final counts are bit-identical to an
uninterrupted run (see :mod:`repro.campaign.checkpoint`).
"""

from __future__ import annotations

import re
import time
from pathlib import Path
from typing import Callable, Iterable

from repro.campaign.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    CampaignCheckpoint,
    save_checkpoint,
    try_load_checkpoint,
)
from repro.campaign.classify import Outcome, classify
from repro.campaign.events import EventLog
from repro.campaign.io import experiment_event_fields
from repro.campaign.results import CampaignResult, ExperimentRecord
from repro.campaign.schedule import (
    PhaseTimes,
    TriggerScheduler,
    validate_schedule,
)
from repro.errors import CampaignError
from repro.fi.config import FIConfig
from repro.fi.tools import FITool, TOOL_CLASSES
from repro.utils.rng import derive_seed

#: The paper's sample count (Leveugle et al.: <=3% error at 95% confidence).
PAPER_SAMPLES = 1068

#: Default base seed for campaigns.
DEFAULT_SEED = 0x5EED0EF1


def make_tool(
    tool_name: str,
    source: str,
    workload: str,
    config: FIConfig | None = None,
    opt_level: str = "O2",
    opcode_faults: float = 0.0,
    snapshot_interval: int | None = None,
    snapshot_dir: str | Path | None = None,
    events: EventLog | None = None,
    engine: str | None = None,
    schedule: str = "index",
    fault_model: str | None = None,
) -> FITool:
    """Build a configured tool; ``snapshot_interval`` (``None`` = off,
    ``0`` = auto) attaches the snapshot fast path, with ``snapshot_dir``
    as the shared on-disk golden-run store.  ``engine`` selects the
    execution engine (``None`` = environment/default).  ``schedule`` only
    retunes the auto snapshot interval: trigger-ordered campaigns serve
    tails from in-memory forks, so the persistent store keeps coarse
    resume points only.  ``fault_model`` is a :mod:`repro.fi.models` spec
    (``None`` = the paper's single-bit default)."""
    try:
        cls = TOOL_CLASSES[tool_name]
    except KeyError:
        raise CampaignError(
            f"unknown tool {tool_name!r}; choose from {sorted(TOOL_CLASSES)}"
        ) from None
    tool = cls(
        source, workload, config=config, opt_level=opt_level,
        opcode_faults=opcode_faults, engine=engine, fault_model=fault_model,
    )
    if snapshot_interval is not None:
        tool.enable_snapshots(
            interval=snapshot_interval, store_dir=snapshot_dir, events=events,
            coarse=schedule == "trigger",
        )
    return tool


def run_experiment(
    tool: FITool,
    base_seed: int,
    index: int,
    phases: PhaseTimes | None = None,
) -> ExperimentRecord:
    """Run the single experiment at global ``index`` and record it.

    The one place (shared by the sequential and parallel runners) where an
    experiment's seed is derived and its outcome classified — so every
    execution mode agrees bit-for-bit.  ``phases`` accumulates the
    per-phase wall-clock breakdown (injection run vs. classification).
    """
    seed = derive_seed(base_seed, tool.workload, tool.name, index)
    snaps = tool.snapshots
    hits_before = snaps.stats.hits if snaps is not None else 0
    t0 = time.perf_counter()
    run = tool.inject(seed)
    t1 = time.perf_counter()
    outcome = classify(run.result, tool.profile.golden_output)
    if phases is not None:
        phases.tail_s += t1 - t0
        phases.classify_s += time.perf_counter() - t1
    return ExperimentRecord(
        seed=seed,
        outcome=outcome,
        cycles=run.cycles,
        steps=run.result.steps,
        trap=run.result.trap,
        exit_code=run.result.exit_code,
        fault=run.result.fault,
        index=index,
        engine=tool.engine.name,
        snapshot_hit=None if snaps is None else snaps.stats.hits > hits_before,
    )


def _emit_snapshot_stats(tool: FITool, events: EventLog | None) -> None:
    """Publish the tool's snapshot-engine counters as one telemetry event."""
    if events is None or tool.snapshots is None:
        return
    events.emit(
        "snapshot_stats",
        workload=tool.workload,
        tool=tool.name,
        **tool.snapshots.stats.as_dict(),
    )


def _fresh_result(tool: FITool, n: int) -> CampaignResult:
    profile = tool.profile  # compiles + profiles on first access
    return CampaignResult(
        workload=tool.workload,
        tool=tool.name,
        n=n,
        counts={o: 0 for o in Outcome},
        golden_output=profile.golden_output,
        total_candidates=profile.total_candidates,
        fault_model=tool.fault_model.spec,
    )


def run_campaign(
    tool: FITool,
    n: int,
    base_seed: int = DEFAULT_SEED,
    keep_records: bool = False,
    progress: Callable[[int, int], None] | None = None,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    events: EventLog | None = None,
    schedule: str = "index",
) -> CampaignResult:
    """Run ``n`` single-fault experiments with the given tool.

    With ``checkpoint_path``, the partial result is atomically persisted
    every ``checkpoint_every`` experiments (and on interruption); if the
    file already exists, the campaign resumes from it, skipping completed
    indices, and the final result is bit-identical to an uninterrupted run.
    ``events`` receives the JSONL telemetry stream (see
    :mod:`repro.campaign.events`).

    ``schedule="trigger"`` visits experiments sorted by injection trigger
    along one golden cursor (see :mod:`repro.campaign.schedule`) instead
    of in index order; the aggregate result is bit-identical (checkpoints
    track the completed-index *set*, so resume works under reordering).
    """
    if n <= 0:
        raise CampaignError("campaign needs n >= 1 experiments")
    if checkpoint_every <= 0:
        raise CampaignError("checkpoint_every must be positive")
    validate_schedule(schedule)
    profile = tool.profile

    completed: set[int] = set()
    result = _fresh_result(tool, n)
    ckpt = try_load_checkpoint(checkpoint_path)
    if ckpt is not None:
        ckpt.matches(
            tool.workload, tool.name, n, base_seed, keep_records,
            fault_model=tool.fault_model.spec,
        )
        completed = set(ckpt.completed)
        if ckpt.partial is not None:
            if ckpt.partial.golden_output != profile.golden_output:
                raise CampaignError(
                    "checkpoint golden output differs from the current "
                    "program — was the workload source changed?"
                )
            if ckpt.partial.total_candidates != profile.total_candidates:
                raise CampaignError(
                    "checkpoint total_candidates differ from the current "
                    "program — was the FIConfig changed?"
                )
            result = ckpt.partial

    if events is not None:
        events.emit(
            "campaign_start", workload=tool.workload, tool=tool.name, n=n,
            base_seed=base_seed, resumed=len(completed),
            resumed_counts={o.value: k for o, k in result.counts.items()},
            fault_model=tool.fault_model.spec,
        )

    def _save() -> None:
        save_checkpoint(
            CampaignCheckpoint(
                workload=tool.workload,
                tool=tool.name,
                n=n,
                base_seed=base_seed,
                keep_records=keep_records,
                completed=set(completed),
                partial=result,
                fault_model=tool.fault_model.spec,
            ),
            checkpoint_path,
        )
        if events is not None:
            events.emit(
                "checkpoint", path=str(checkpoint_path),
                completed=len(completed), n=n,
            )
        _emit_snapshot_stats(tool, events)

    remaining = [i for i in range(n) if i not in completed]
    phases = PhaseTimes()
    scheduler: TriggerScheduler | None = None
    if schedule == "trigger":
        scheduler = TriggerScheduler(tool, events=events)
        phases = scheduler.phases
        records = scheduler.run_batch(base_seed, remaining)
    else:
        records = (
            run_experiment(tool, base_seed, i, phases=phases)
            for i in remaining
        )

    started = time.monotonic()
    since_checkpoint = 0
    records = iter(records)
    try:
        while True:
            t0 = time.monotonic()
            try:
                record = next(records)
            except StopIteration:
                break
            result.add(record, keep_records)
            completed.add(record.index)
            since_checkpoint += 1
            if events is not None:
                events.emit(
                    "experiment", workload=tool.workload, tool=tool.name,
                    wall_s=time.monotonic() - t0,
                    **experiment_event_fields(record),
                )
            if (
                checkpoint_path is not None
                and since_checkpoint >= checkpoint_every
            ):
                _save()
                since_checkpoint = 0
            if progress is not None:
                progress(len(completed), n)
    except BaseException:
        # Interrupted (e.g. SIGINT): persist what we have so the campaign
        # resumes without losing a single completed experiment.
        if checkpoint_path is not None:
            _save()
        raise
    if checkpoint_path is not None and since_checkpoint:
        _save()
    if keep_records:
        # Trigger order (and index-set resume) can complete experiments out
        # of index order; the persisted log is canonical in global order.
        result.records.sort(key=lambda r: r.index)

    wall = time.monotonic() - started
    _emit_snapshot_stats(tool, events)
    if events is not None:
        extra = {"scheduler": scheduler.stats.as_dict()} if scheduler else {}
        events.emit(
            "campaign_finish", workload=tool.workload, tool=tool.name,
            counts={o.value: result.frequency(o) for o in Outcome},
            total_cycles=result.total_cycles, total_steps=result.total_steps,
            total_candidates=result.total_candidates,
            golden_output=list(result.golden_output),
            wall_s=wall,
            experiments_per_sec=(len(completed) / wall) if wall > 0 else 0.0,
            schedule=schedule, phases=phases.as_dict(),
            fault_model=tool.fault_model.spec, **extra,
        )
    return result


def _slug(name: str) -> str:
    return re.sub(r"[^\w.-]", "_", name)


def matrix_checkpoint_path(
    checkpoint_dir: str | Path, workload: str, tool_name: str
) -> Path:
    """Per-cell checkpoint file used by :func:`run_matrix`."""
    return Path(checkpoint_dir) / f"{_slug(workload)}__{_slug(tool_name)}.ckpt.json"


def run_matrix(
    sources: dict[str, str],
    tool_names: Iterable[str],
    n: int,
    base_seed: int = DEFAULT_SEED,
    config: FIConfig | None = None,
    opt_level: str = "O2",
    progress: Callable[[str, str, int, int], None] | None = None,
    keep_records: bool = False,
    workers: int = 1,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    events: EventLog | None = None,
    snapshot_interval: int | None = None,
    snapshot_dir: str | Path | None = None,
    engine: str | None = None,
    schedule: str = "index",
    fault_model: str | None = None,
) -> dict[tuple[str, str], CampaignResult]:
    """Run the full (workload x tool) campaign matrix, like the paper's
    44,856-experiment evaluation (14 apps x 3 tools x 1068 samples).

    ``keep_records=True`` keeps per-experiment :class:`ExperimentRecord`
    fault logs in every cell (so :func:`repro.campaign.save_matrix` can
    persist them).  ``checkpoint_dir`` gives every cell its own checkpoint
    file; re-running the same matrix resumes unfinished cells and skips
    finished ones.  ``workers > 1`` runs each cell with the multi-process
    runner (identical results, any worker count).  ``snapshot_interval``
    (``None`` = off, ``0`` = auto) enables the golden-run snapshot fast
    path; the store defaults to ``<checkpoint_dir>/snapshots`` so every
    worker shares one golden run per binary.  ``schedule="trigger"`` runs
    every cell trigger-ordered (see :mod:`repro.campaign.schedule`).
    """
    validate_schedule(schedule)
    if (
        snapshot_interval is not None
        and snapshot_dir is None
        and checkpoint_dir is not None
    ):
        snapshot_dir = Path(checkpoint_dir) / "snapshots"
    results: dict[tuple[str, str], CampaignResult] = {}
    for workload, source in sources.items():
        for tool_name in tool_names:
            cb = None
            if progress is not None:
                cb = lambda i, total, w=workload, t=tool_name: progress(w, t, i, total)
            ckpt_path = None
            if checkpoint_dir is not None:
                ckpt_path = matrix_checkpoint_path(checkpoint_dir, workload, tool_name)
            if workers > 1:
                from repro.campaign.parallel import run_campaign_parallel

                results[(workload, tool_name)] = run_campaign_parallel(
                    tool_name, source, workload, n, workers=workers,
                    base_seed=base_seed, config=config, opt_level=opt_level,
                    keep_records=keep_records, progress=cb,
                    checkpoint_path=ckpt_path,
                    checkpoint_every=checkpoint_every, events=events,
                    snapshot_interval=snapshot_interval,
                    snapshot_dir=snapshot_dir, engine=engine,
                    schedule=schedule, fault_model=fault_model,
                )
            else:
                tool = make_tool(
                    tool_name, source, workload, config, opt_level,
                    snapshot_interval=snapshot_interval,
                    snapshot_dir=snapshot_dir, events=events, engine=engine,
                    schedule=schedule, fault_model=fault_model,
                )
                results[(workload, tool_name)] = run_campaign(
                    tool, n, base_seed, keep_records=keep_records,
                    progress=cb, checkpoint_path=ckpt_path,
                    checkpoint_every=checkpoint_every, events=events,
                    schedule=schedule,
                )
    return results


def replay(tool: FITool, seed: int):
    """Re-run a single logged experiment deterministically."""
    return tool.inject(seed)
