"""Campaign orchestration: many single-fault experiments per (workload, tool).

Each experiment is a pure function of ``(base_seed, workload, tool, index)``
via :func:`repro.utils.rng.derive_seed`, so campaigns are reproducible and
each tool samples independent fault coordinates (the paper runs independent
random campaigns per tool and compares the resulting outcome distributions).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.campaign.classify import Outcome, classify
from repro.campaign.results import CampaignResult, ExperimentRecord
from repro.errors import CampaignError
from repro.fi.config import FIConfig
from repro.fi.tools import FITool, TOOL_CLASSES
from repro.utils.rng import derive_seed

#: The paper's sample count (Leveugle et al.: <=3% error at 95% confidence).
PAPER_SAMPLES = 1068

#: Default base seed for campaigns.
DEFAULT_SEED = 0x5EED0EF1


def make_tool(
    tool_name: str,
    source: str,
    workload: str,
    config: FIConfig | None = None,
    opt_level: str = "O2",
) -> FITool:
    try:
        cls = TOOL_CLASSES[tool_name]
    except KeyError:
        raise CampaignError(
            f"unknown tool {tool_name!r}; choose from {sorted(TOOL_CLASSES)}"
        ) from None
    return cls(source, workload, config=config, opt_level=opt_level)


def run_campaign(
    tool: FITool,
    n: int,
    base_seed: int = DEFAULT_SEED,
    keep_records: bool = False,
    progress: Callable[[int, int], None] | None = None,
) -> CampaignResult:
    """Run ``n`` single-fault experiments with the given tool."""
    if n <= 0:
        raise CampaignError("campaign needs n >= 1 experiments")
    profile = tool.profile  # compiles + profiles on first access
    result = CampaignResult(
        workload=tool.workload,
        tool=tool.name,
        n=n,
        counts={o: 0 for o in Outcome},
        golden_output=profile.golden_output,
        total_candidates=profile.total_candidates,
    )
    for i in range(n):
        seed = derive_seed(base_seed, tool.workload, tool.name, i)
        run = tool.inject(seed)
        outcome = classify(run.result, profile.golden_output)
        result.counts[outcome] += 1
        result.total_cycles += run.cycles
        result.total_steps += run.result.steps
        if keep_records:
            result.records.append(
                ExperimentRecord(
                    seed=seed,
                    outcome=outcome,
                    cycles=run.cycles,
                    steps=run.result.steps,
                    trap=run.result.trap,
                    exit_code=run.result.exit_code,
                    fault=run.result.fault,
                )
            )
        if progress is not None:
            progress(i + 1, n)
    return result


def run_matrix(
    sources: dict[str, str],
    tool_names: Iterable[str],
    n: int,
    base_seed: int = DEFAULT_SEED,
    config: FIConfig | None = None,
    opt_level: str = "O2",
    progress: Callable[[str, str, int, int], None] | None = None,
) -> dict[tuple[str, str], CampaignResult]:
    """Run the full (workload x tool) campaign matrix, like the paper's
    44,856-experiment evaluation (14 apps x 3 tools x 1068 samples)."""
    results: dict[tuple[str, str], CampaignResult] = {}
    for workload, source in sources.items():
        for tool_name in tool_names:
            tool = make_tool(tool_name, source, workload, config, opt_level)
            cb = None
            if progress is not None:
                cb = lambda i, total, w=workload, t=tool_name: progress(w, t, i, total)
            results[(workload, tool_name)] = run_campaign(
                tool, n, base_seed, progress=cb
            )
    return results


def replay(tool: FITool, seed: int):
    """Re-run a single logged experiment deterministically."""
    return tool.inject(seed)
