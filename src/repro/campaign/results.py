"""Result containers for fault-injection campaigns."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.classify import OUTCOME_ORDER, Outcome
from repro.machine.cpu import FaultRecord


@dataclass
class ExperimentRecord:
    """One experiment: its seed, outcome and (if a fault fired) the log entry
    needed for replay (paper Section 4.3.1)."""

    seed: int
    outcome: Outcome
    cycles: float
    steps: int
    trap: str | None = None
    exit_code: int = 0
    fault: FaultRecord | None = None
    #: global experiment index within the campaign (-1 when unknown, e.g.
    #: records loaded from a version-1 file); lets merged/resumed campaigns
    #: keep records in global order.
    index: int = -1
    #: execution engine that ran the experiment (``None`` when unknown,
    #: e.g. records loaded from an older file).
    engine: str | None = None
    #: whether the run was served from a golden-run snapshot (``None`` when
    #: the snapshot fast path was off or the record predates the field).
    snapshot_hit: bool | None = None


@dataclass
class CampaignResult:
    """Aggregated outcome of one (workload, tool) campaign."""

    workload: str
    tool: str
    n: int
    counts: dict[Outcome, int] = field(default_factory=dict)
    total_cycles: float = 0.0
    total_steps: int = 0
    golden_output: tuple[str, ...] = ()
    total_candidates: int = 0
    records: list[ExperimentRecord] = field(default_factory=list)
    #: canonical fault-model spec the campaign ran under (repro.fi.models);
    #: defaults keep pre-model results and files meaningful.
    fault_model: str = "single-bit"

    def add(self, record: ExperimentRecord, keep_record: bool = False) -> None:
        """Tally one finished experiment (shared by the sequential runner,
        the parallel workers and checkpoint resume, so all three accumulate
        identically)."""
        self.counts[record.outcome] = self.counts.get(record.outcome, 0) + 1
        self.total_cycles += record.cycles
        self.total_steps += record.steps
        if keep_record:
            self.records.append(record)

    def frequency(self, outcome: Outcome) -> int:
        return self.counts.get(outcome, 0)

    def proportion(self, outcome: Outcome) -> float:
        return self.frequency(outcome) / self.n if self.n else 0.0

    def frequencies(self) -> tuple[int, int, int]:
        """(crash, soc, benign) in the canonical order."""
        return tuple(self.frequency(o) for o in OUTCOME_ORDER)  # type: ignore[return-value]

    def summary(self) -> str:
        parts = ", ".join(
            f"{o.value}={self.proportion(o) * 100:.1f}%" for o in OUTCOME_ORDER
        )
        return f"{self.workload}/{self.tool} (n={self.n}): {parts}"
