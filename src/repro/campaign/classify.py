"""Outcome classification (paper Section 4.3.2).

Each fault-injection run is classified as:

* **CRASH** — a machine trap (segfault, illegal instruction, divide error,
  stack overflow), a timeout (> 10x the profiled execution length), or a
  non-zero exit code;
* **SOC** — silent output corruption: the run terminates cleanly but the
  final printed output differs from the golden (fault-free) output;
* **BENIGN** — output identical to the golden output.

Classification compares only final printed results (the workloads print
checksums/residuals, not intermediate data), matching the paper's method.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from repro.machine.cpu import ExecutionResult


class Outcome(str, Enum):
    CRASH = "crash"
    SOC = "soc"
    BENIGN = "benign"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Fixed category order used by tables and chi-squared tests.
OUTCOME_ORDER = (Outcome.CRASH, Outcome.SOC, Outcome.BENIGN)


def classify(result: ExecutionResult, golden_output: Sequence[str]) -> Outcome:
    """Classify one run against the golden output."""
    if result.trap is not None:
        return Outcome.CRASH
    # Process-semantics boundary: a parent observes only the low 8 bits of
    # the exit code (waitpid), so 256 exits "0" and -1 exits 255 on the
    # machines the paper measured.
    if result.exit_status != 0:
        return Outcome.CRASH
    if tuple(result.output) != tuple(golden_output):
        return Outcome.SOC
    return Outcome.BENIGN
