"""Confidence intervals for outcome proportions (Figure 4's whiskers)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import StatsError
from repro.stats.samples import normal_quantile


@dataclass(frozen=True)
class Interval:
    """A proportion with its confidence interval."""

    p: float
    low: float
    high: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def overlaps(self, other: "Interval") -> bool:
        return self.low <= other.high and other.low <= self.high


def _check(successes: int, n: int, confidence: float) -> float:
    if n <= 0:
        raise StatsError("n must be positive")
    if not 0 <= successes <= n:
        raise StatsError(f"successes {successes} out of range for n={n}")
    if not 0 < confidence < 1:
        raise StatsError("confidence must be in (0, 1)")
    return normal_quantile(0.5 + confidence / 2.0)


def normal_interval(successes: int, n: int, confidence: float = 0.95) -> Interval:
    """Wald (normal approximation) interval — what the paper's error bars
    use, via the Leveugle margin-of-error formulation."""
    z = _check(successes, n, confidence)
    p = successes / n
    half = z * math.sqrt(p * (1.0 - p) / n)
    return Interval(p, max(0.0, p - half), min(1.0, p + half))


def wilson_interval(successes: int, n: int, confidence: float = 0.95) -> Interval:
    """Wilson score interval — better behaviour near 0/1, used by the extra
    analyses beyond the paper."""
    z = _check(successes, n, confidence)
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return Interval(p, max(0.0, center - half), min(1.0, center + half))
