"""Statistical fault injection sample sizing (Leveugle et al., DATE 2009).

The paper draws 1068 samples per (application, tool) so that outcome
proportions carry a margin of error of at most 3% at 95% confidence.  The
formula, for a fault population of size ``N`` (here: the number of dynamic
candidate instructions x operands x bits — effectively huge)::

    n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))

with ``p = 0.5`` (worst case), ``t`` the two-sided normal quantile for the
confidence level, and ``e`` the margin of error.  As N -> inf this tends to
``t^2 p (1-p) / e^2`` ~= 1067.07 -> 1068 samples.
"""

from __future__ import annotations

import math

from repro.errors import StatsError


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation,
    |relative error| < 1.15e-9 — plenty for sample sizing)."""
    if not 0.0 < p < 1.0:
        raise StatsError(f"quantile argument must be in (0, 1), got {p}")
    # Coefficients for the rational approximations.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
        ) / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


def leveugle_sample_size(
    population: float = math.inf,
    margin: float = 0.03,
    confidence: float = 0.95,
    p: float = 0.5,
) -> int:
    """Number of fault-injection samples for the requested margin of error.

    ``population=inf`` gives the asymptotic (and the paper's) value: 1068
    for 3% at 95%.
    """
    if not 0 < margin < 1:
        raise StatsError(f"margin must be in (0,1), got {margin}")
    if not 0 < confidence < 1:
        raise StatsError(f"confidence must be in (0,1), got {confidence}")
    if not 0 < p < 1:
        raise StatsError(f"p must be in (0,1), got {p}")
    t = normal_quantile(0.5 + confidence / 2.0)
    n_inf = t * t * p * (1.0 - p) / (margin * margin)
    if math.isinf(population):
        return math.ceil(n_inf)
    if population <= 0:
        raise StatsError("population must be positive")
    n = population / (
        1.0 + margin * margin * (population - 1.0) / (t * t * p * (1.0 - p))
    )
    return math.ceil(n)


def margin_of_error(
    n: int, confidence: float = 0.95, p: float = 0.5
) -> float:
    """Margin of error actually achieved by ``n`` samples (inverse of the
    asymptotic Leveugle formula) — reported whenever a campaign runs with a
    sample count other than 1068."""
    if n <= 0:
        raise StatsError("n must be positive")
    t = normal_quantile(0.5 + confidence / 2.0)
    return t * math.sqrt(p * (1.0 - p) / n)
