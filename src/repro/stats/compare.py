"""Formal tool-accuracy comparison: chi-squared plus effect size.

The paper's Table 5 reports only significance.  For a production library
significance alone is misleading at large n (trivial differences become
"significant"), so this module adds:

* **Cramér's V** — the standard effect size for contingency tables,
  V = sqrt(chi2 / (n * (min(r, c) - 1))); ~0.1 small, ~0.3 medium,
  ~0.5 large;
* **confidence-interval agreement** — the Figure-4 "rule of thumb": the
  fraction of outcome categories where the tool's proportion falls inside
  the baseline's CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.campaign.classify import OUTCOME_ORDER
from repro.campaign.results import CampaignResult
from repro.stats.chisq import ChiSquaredResult
from repro.stats.intervals import normal_interval
from repro.stats.tables import ContingencyTable


@dataclass
class ToolComparison:
    """Full accuracy comparison of one tool against a baseline."""

    workload: str
    tool: str
    baseline: str
    test: ChiSquaredResult
    cramers_v: float
    #: per-outcome: does the tool's proportion sit inside the baseline CI?
    within_ci: dict[str, bool]

    @property
    def agrees(self) -> bool:
        """The paper's criterion: not significantly different."""
        return not self.test.significant

    @property
    def effect_label(self) -> str:
        v = self.cramers_v
        if v < 0.1:
            return "negligible"
        if v < 0.3:
            return "small"
        if v < 0.5:
            return "medium"
        return "large"

    def summary(self) -> str:
        inside = sum(self.within_ci.values())
        return (
            f"{self.workload}: {self.tool} vs {self.baseline} — "
            f"p={self.test.p_value:.3g} "
            f"({'different' if self.test.significant else 'similar'}), "
            f"V={self.cramers_v:.3f} ({self.effect_label}), "
            f"{inside}/{len(self.within_ci)} outcomes within baseline CI"
        )


def cramers_v(test: ChiSquaredResult, n: int, n_rows: int = 2) -> float:
    """Cramér's V from a chi-squared statistic over ``n`` observations."""
    n_cols = test.dof // (n_rows - 1) + 1
    k = min(n_rows, n_cols)
    if n <= 0 or k < 2:
        return 0.0
    return math.sqrt(test.statistic / (n * (k - 1)))


def compare_tools(
    tool_result: CampaignResult,
    baseline_result: CampaignResult,
    alpha: float = 0.05,
    confidence: float = 0.95,
) -> ToolComparison:
    """Compare a tool's outcome distribution against the baseline's."""
    table = ContingencyTable.from_results(tool_result, baseline_result)
    test = table.test(alpha)
    total = tool_result.n + baseline_result.n
    within = {}
    for outcome in OUTCOME_ORDER:
        base_iv = normal_interval(
            baseline_result.frequency(outcome), baseline_result.n, confidence
        )
        within[outcome.value] = base_iv.contains(
            tool_result.proportion(outcome)
        )
    return ToolComparison(
        workload=tool_result.workload,
        tool=tool_result.tool,
        baseline=baseline_result.tool,
        test=test,
        cramers_v=cramers_v(test, total),
        within_ci=within,
    )
