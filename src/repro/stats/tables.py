"""Contingency tables over campaign results (paper Tables 4-6)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.classify import OUTCOME_ORDER
from repro.campaign.results import CampaignResult
from repro.stats.chisq import ChiSquaredResult, chi2_contingency


@dataclass
class ContingencyTable:
    """A 2 x 3 (tool x outcome) frequency table, like the paper's Table 4."""

    workload: str
    tool_a: str
    tool_b: str
    row_a: tuple[int, int, int]
    row_b: tuple[int, int, int]

    @classmethod
    def from_results(
        cls, a: CampaignResult, b: CampaignResult
    ) -> "ContingencyTable":
        assert a.workload == b.workload, "tables compare one workload"
        return cls(
            workload=a.workload,
            tool_a=a.tool,
            tool_b=b.tool,
            row_a=a.frequencies(),
            row_b=b.frequencies(),
        )

    def rows(self) -> list[list[int]]:
        return [list(self.row_a), list(self.row_b)]

    def test(self, alpha: float = 0.05) -> ChiSquaredResult:
        """Chi-squared homogeneity test between the two tools."""
        return chi2_contingency(self.rows(), alpha=alpha)

    def to_markdown(self) -> str:
        header = ["Tool"] + [o.value.capitalize() for o in OUTCOME_ORDER] + ["Total"]
        lines = [
            "| " + " | ".join(header) + " |",
            "|" + "---|" * len(header),
        ]
        for tool, row in ((self.tool_a, self.row_a), (self.tool_b, self.row_b)):
            lines.append(
                "| " + " | ".join([tool] + [str(v) for v in row] + [str(sum(row))]) + " |"
            )
        totals = [self.row_a[i] + self.row_b[i] for i in range(3)]
        lines.append(
            "| Total | " + " | ".join(str(v) for v in totals) + " |  |"
        )
        return "\n".join(lines)
