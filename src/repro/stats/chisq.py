"""Pearson chi-squared test of homogeneity on contingency tables.

Implemented from scratch (statistic, degrees of freedom, and the p-value via
the regularized upper incomplete gamma function Q(k/2, x/2), computed with
the standard series/continued-fraction split from Numerical Recipes).  The
test suite cross-checks against :func:`scipy.stats.chi2_contingency`.

This is the paper's accuracy instrument (Section 5.4.2): for each
application, the outcome frequencies of a tool under test are compared with
PINFI's; p < alpha = 0.05 means the tool samples a significantly different
outcome population.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import StatsError

_EPS = 3.0e-14
_MAX_ITER = 500


def _gamma_series(a: float, x: float) -> float:
    """P(a, x) by series expansion; valid for x < a + 1."""
    ap = a
    total = 1.0 / a
    delta = total
    for _ in range(_MAX_ITER):
        ap += 1.0
        delta *= x / ap
        total += delta
        if abs(delta) < abs(total) * _EPS:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _gamma_cf(a: float, x: float) -> float:
    """Q(a, x) by continued fraction; valid for x >= a + 1."""
    tiny = 1.0e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITER + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    return math.exp(-x + a * math.log(x) - math.lgamma(a)) * h


def gammainc_upper(a: float, x: float) -> float:
    """Regularized upper incomplete gamma Q(a, x) = Gamma(a,x)/Gamma(a)."""
    if a <= 0:
        raise StatsError(f"gammainc_upper needs a > 0, got {a}")
    if x < 0:
        raise StatsError(f"gammainc_upper needs x >= 0, got {x}")
    if x == 0.0:
        return 1.0
    if x < a + 1.0:
        return 1.0 - _gamma_series(a, x)
    return _gamma_cf(a, x)


def chi2_sf(x: float, dof: int) -> float:
    """Survival function of the chi-squared distribution."""
    if dof <= 0:
        raise StatsError(f"chi2_sf needs dof >= 1, got {dof}")
    if x <= 0:
        return 1.0
    return gammainc_upper(dof / 2.0, x / 2.0)


@dataclass
class ChiSquaredResult:
    """Outcome of a chi-squared homogeneity test."""

    statistic: float
    dof: int
    p_value: float
    expected: list[list[float]]
    #: True when p < alpha: the two distributions differ significantly
    significant: bool
    alpha: float

    def verdict(self) -> str:
        return "yes" if self.significant else "no"


def chi2_contingency(
    table: list[list[int]] | tuple, alpha: float = 0.05
) -> ChiSquaredResult:
    """Pearson chi-squared test on an R x C contingency table.

    All-zero columns (e.g. no SOC outcomes for either tool, as happens for
    NAS CG in the paper's Table 6) are dropped before computing degrees of
    freedom, matching standard practice.
    """
    rows = [list(map(float, row)) for row in table]
    if len(rows) < 2:
        raise StatsError("contingency table needs at least 2 rows")
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise StatsError("ragged contingency table")
    if any(v < 0 for r in rows for v in r):
        raise StatsError("negative frequency in contingency table")

    # Drop all-zero columns.
    keep = [j for j in range(width) if any(r[j] > 0 for r in rows)]
    if len(keep) < 2:
        raise StatsError("contingency table needs >= 2 non-empty categories")
    rows = [[r[j] for j in keep] for r in rows]
    n_rows = len(rows)
    n_cols = len(keep)

    row_sums = [sum(r) for r in rows]
    col_sums = [sum(r[j] for r in rows) for j in range(n_cols)]
    total = sum(row_sums)
    if total <= 0:
        raise StatsError("empty contingency table")
    if any(s == 0 for s in row_sums):
        raise StatsError("contingency table has an empty row")

    expected = [
        [row_sums[i] * col_sums[j] / total for j in range(n_cols)]
        for i in range(n_rows)
    ]
    statistic = 0.0
    for i in range(n_rows):
        for j in range(n_cols):
            e = expected[i][j]
            d = rows[i][j] - e
            statistic += d * d / e
    dof = (n_rows - 1) * (n_cols - 1)
    p = chi2_sf(statistic, dof)
    return ChiSquaredResult(
        statistic=statistic,
        dof=dof,
        p_value=p,
        expected=expected,
        significant=p < alpha,
        alpha=alpha,
    )
