"""Statistics: sample sizing, confidence intervals, chi-squared testing."""

from repro.stats.compare import ToolComparison, compare_tools, cramers_v
from repro.stats.chisq import (
    ChiSquaredResult,
    chi2_contingency,
    chi2_sf,
    gammainc_upper,
)
from repro.stats.intervals import Interval, normal_interval, wilson_interval
from repro.stats.samples import (
    leveugle_sample_size,
    margin_of_error,
    normal_quantile,
)
from repro.stats.tables import ContingencyTable

__all__ = [
    "ToolComparison",
    "compare_tools",
    "cramers_v",
    "ChiSquaredResult",
    "chi2_contingency",
    "chi2_sf",
    "gammainc_upper",
    "Interval",
    "normal_interval",
    "wilson_interval",
    "leveugle_sample_size",
    "margin_of_error",
    "normal_quantile",
    "ContingencyTable",
]
