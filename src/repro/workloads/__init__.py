"""The 14 benchmark programs of the paper's Table 3, as MiniC workloads."""

from repro.workloads.registry import (
    WorkloadSpec,
    all_workloads,
    get_lifecycle,
    get_workload,
    lifecycle_names,
    register_lifecycle,
    workload_names,
    workload_sources,
)

__all__ = [
    "WorkloadSpec",
    "all_workloads",
    "get_lifecycle",
    "get_workload",
    "lifecycle_names",
    "register_lifecycle",
    "workload_names",
    "workload_sources",
]
