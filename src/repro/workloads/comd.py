"""CoMD analogue: Lennard-Jones molecular dynamics with velocity Verlet.

The original computes EAM/LJ forces over link cells; the dominant kernel —
an O(N^2-ish) pair force loop with square roots and cutoff branches feeding
a time integrator — is reproduced directly.
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// CoMD analogue: 1D-periodic Lennard-Jones MD, N particles, velocity Verlet.
double px[14];
double pv[14];
double pf[14];
int N = 14;
double BOX = 14.0;
double CUTOFF = 3.0;
double DT = 0.002;

double pair_force(double rx) {
  // LJ: F = 24*eps*(2*(s/r)^12 - (s/r)^6)/r with eps = s = 1.
  double inv = 1.0 / rx;
  double r2 = inv * inv;
  double r6 = r2 * r2 * r2;
  double r12 = r6 * r6;
  return 24.0 * (2.0 * r12 - r6) * inv;
}

double compute_forces() {
  double epot = 0.0;
  for (int i = 0; i < N; i = i + 1) {
    pf[i] = 0.0;
  }
  for (int i = 0; i < N; i = i + 1) {
    for (int j = i + 1; j < N; j = j + 1) {
      double dx = px[i] - px[j];
      // minimum-image convention
      if (dx > 0.5 * BOX) { dx = dx - BOX; }
      if (dx < -0.5 * BOX) { dx = dx + BOX; }
      double r = fabs(dx);
      if (r < CUTOFF && r > 0.001) {
        double fmag = pair_force(r);
        double dir = 1.0;
        if (dx < 0.0) { dir = -1.0; }
        pf[i] = pf[i] + fmag * dir;
        pf[j] = pf[j] - fmag * dir;
        double inv = 1.0 / r;
        double r6 = inv * inv * inv * inv * inv * inv;
        epot = epot + 4.0 * (r6 * r6 - r6);
      }
    }
  }
  return epot;
}

int main() {
  // Lattice positions with a deterministic jitter.
  int seed = 2017;
  for (int i = 0; i < N; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    double jitter = (double)seed / 2147483648.0 * 0.1 - 0.05;
    px[i] = (double)i + jitter;
    pv[i] = 0.0;
  }

  double epot = compute_forces();
  double ekin = 0.0;
  for (int step = 0; step < 3; step = step + 1) {
    // velocity Verlet: kick-drift-kick
    for (int i = 0; i < N; i = i + 1) {
      pv[i] = pv[i] + 0.5 * DT * pf[i];
      px[i] = px[i] + DT * pv[i];
      if (px[i] >= BOX) { px[i] = px[i] - BOX; }
      if (px[i] < 0.0) { px[i] = px[i] + BOX; }
    }
    epot = compute_forces();
    ekin = 0.0;
    for (int i = 0; i < N; i = i + 1) {
      pv[i] = pv[i] + 0.5 * DT * pf[i];
      ekin = ekin + 0.5 * pv[i] * pv[i];
    }
  }

  print_double(epot);
  print_double(ekin);
  print_double(epot + ekin);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="CoMD",
        description="Lennard-Jones molecular dynamics pair-force loop with "
        "velocity Verlet integration (periodic, cutoff)",
        paper_input="-d ./pots/ -e -i 1 -j 1 -k 1 -x 32 -y 32 -z 32",
        input_desc="N=14 particles, 3 velocity-Verlet steps, LJ cutoff 3.0",
        source=SOURCE,
    )
)
