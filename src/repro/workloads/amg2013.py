"""AMG2013 analogue: two-level algebraic multigrid V-cycles on 1D Poisson.

The original solves a 3D Laplace system with multigrid; the kernel mix is
weighted-Jacobi smoothing, residual computation, restriction and
prolongation — all reproduced here on a 1D grid with a direct analogue of
the V-cycle structure.
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// AMG2013 analogue: 2-level multigrid V-cycle for -u'' = f on [0,1].
double u[33];
double f[33];
double r[33];
double rc[17];
double ec[17];
int NF = 32;
int NC = 16;
double H2 = 0.0009765625;    // h^2 with h = 1/32
double H2C = 0.00390625;     // (2h)^2

void smooth(double* x, double* rhs, int n, double h2, int iters) {
  for (int it = 0; it < iters; it = it + 1) {
    for (int i = 1; i < n; i = i + 1) {
      double gs = 0.5 * (x[i - 1] + x[i + 1] + h2 * rhs[i]);
      x[i] = x[i] + 0.8 * (gs - x[i]);
    }
  }
}

void residual(double* x, double* rhs, double* res, int n, double h2) {
  for (int i = 1; i < n; i = i + 1) {
    res[i] = rhs[i] - (2.0 * x[i] - x[i - 1] - x[i + 1]) / h2;
  }
  res[0] = 0.0;
  res[n] = 0.0;
}

double norm2(double* v, int n) {
  double s = 0.0;
  for (int i = 0; i <= n; i = i + 1) {
    s = s + v[i] * v[i];
  }
  return sqrt(s);
}

int main() {
  // f(x) = sin-like forcing via quadratic bump; u = 0 initial guess.
  for (int i = 0; i <= NF; i = i + 1) {
    double x = (double)i / 32.0;
    f[i] = x * (1.0 - x) * 8.0;
    u[i] = 0.0;
  }

  for (int cycle = 0; cycle < 2; cycle = cycle + 1) {
    // Pre-smooth on the fine grid.
    smooth(u, f, NF, H2, 2);
    residual(u, f, r, NF, H2);
    // Restrict (full weighting) to the coarse grid.
    for (int i = 1; i < NC; i = i + 1) {
      rc[i] = 0.25 * r[2 * i - 1] + 0.5 * r[2 * i] + 0.25 * r[2 * i + 1];
      ec[i] = 0.0;
    }
    rc[0] = 0.0; rc[NC] = 0.0; ec[0] = 0.0; ec[NC] = 0.0;
    // "Coarse solve": many smoothing sweeps.
    smooth(ec, rc, NC, H2C, 8);
    // Prolongate and correct.
    for (int i = 1; i < NC; i = i + 1) {
      u[2 * i] = u[2 * i] + ec[i];
      u[2 * i + 1] = u[2 * i + 1] + 0.5 * (ec[i] + ec[i + 1]);
    }
    u[1] = u[1] + 0.5 * ec[1];
    // Post-smooth.
    smooth(u, f, NF, H2, 2);
  }

  residual(u, f, r, NF, H2);
  print_double(norm2(r, NF));
  print_double(norm2(u, NF));
  double mid = u[16];
  print_double(mid);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="AMG2013",
        description="algebraic multigrid V-cycles (smoothing/restriction/"
        "prolongation) on a 1D Poisson problem",
        paper_input="-in sstruct.in.MG.FD -r 24 24 24",
        input_desc="1D Poisson n=32, 2-level V-cycle x2",
        source=SOURCE,
    )
)
