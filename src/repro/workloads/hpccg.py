"""HPCCG analogue: conjugate gradient on a banded sparse system.

The original solves a 27-point-stencil sparse system with CG; the kernels —
``ddot``, ``waxpby`` and a sparse matrix-vector product — are exactly the
ones reproduced here on a tridiagonal-with-fringe matrix.
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// HPCCG analogue: CG on a 1D 3-point-stencil system A x = b, n = 48.
double xv[32];
double bv[32];
double rv[32];
double pv[32];
double Ap[32];
int N = 32;

double ddot(double* a, double* b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i = i + 1) {
    s = s + a[i] * b[i];
  }
  return s;
}

void waxpby(double alpha, double* x, double beta, double* y, double* w, int n) {
  for (int i = 0; i < n; i = i + 1) {
    w[i] = alpha * x[i] + beta * y[i];
  }
}

void sparsemv(double* x, double* y, int n) {
  // A = tridiag(-1, 4, -1) with periodic fringe terms (27-pt flavour).
  for (int i = 0; i < n; i = i + 1) {
    double s = 4.0 * x[i];
    if (i > 0) { s = s - x[i - 1]; }
    if (i < n - 1) { s = s - x[i + 1]; }
    s = s - 0.5 * x[(i + 8) % n];
    y[i] = s;
  }
}

int main() {
  for (int i = 0; i < N; i = i + 1) {
    xv[i] = 0.0;
    bv[i] = 1.0 + (double)(i % 5) * 0.25;
  }
  // r = b - A x = b; p = r
  waxpby(1.0, bv, 0.0, bv, rv, N);
  waxpby(1.0, rv, 0.0, rv, pv, N);
  double rtrans = ddot(rv, rv, N);

  int iters = 0;
  for (int k = 0; k < 8; k = k + 1) {
    sparsemv(pv, Ap, N);
    double alpha = rtrans / ddot(pv, Ap, N);
    waxpby(1.0, xv, alpha, pv, xv, N);
    waxpby(1.0, rv, -alpha, Ap, rv, N);
    double rtrans_new = ddot(rv, rv, N);
    double beta = rtrans_new / rtrans;
    rtrans = rtrans_new;
    waxpby(1.0, rv, beta, pv, pv, N);
    iters = iters + 1;
    if (rtrans < 0.0000000001) {
      break;
    }
  }

  print_int(iters);
  print_double(sqrt(rtrans));
  print_double(ddot(xv, xv, N));
  return 0;
}
"""

register(
    WorkloadSpec(
        name="HPCCG-1.0",
        description="conjugate-gradient solver: ddot, waxpby and sparse "
        "matrix-vector kernels",
        paper_input="128 128 128",
        input_desc="3-point stencil n=32, 8 CG iterations",
        source=SOURCE,
    )
)
