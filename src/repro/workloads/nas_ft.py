"""NAS FT analogue: radix-2 FFT with spectral evolution.

FT solves a PDE by forward FFT, evolution in the spectral domain, and
checksumming.  Reproduced: an iterative in-place radix-2 complex FFT
(bit-reversal permutation + butterfly stages), exponential evolution, and
the NAS-style complex checksum.
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// NAS FT analogue: 64-point complex FFT, evolve, checksum.
double re[64];
double im[64];
int N = 64;
double PI = 3.14159265358979323846;

void fft() {
  // Bit-reversal permutation (6 bits).
  for (int i = 0; i < N; i = i + 1) {
    int j = 0;
    int v = i;
    for (int b = 0; b < 6; b = b + 1) {
      j = (j << 1) | (v & 1);
      v = v >> 1;
    }
    if (j > i) {
      double tr = re[i]; re[i] = re[j]; re[j] = tr;
      double ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
  }
  // Butterfly stages.
  for (int len = 2; len <= N; len = len * 2) {
    double ang = -2.0 * PI / (double)len;
    double wr = cos(ang);
    double wi = sin(ang);
    for (int start = 0; start < N; start = start + len) {
      double cr = 1.0;
      double ci = 0.0;
      int half = len / 2;
      for (int k = 0; k < half; k = k + 1) {
        int a = start + k;
        int b = a + half;
        double xr = re[b] * cr - im[b] * ci;
        double xi = re[b] * ci + im[b] * cr;
        re[b] = re[a] - xr;
        im[b] = im[a] - xi;
        re[a] = re[a] + xr;
        im[a] = im[a] + xi;
        double ncr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = ncr;
      }
    }
  }
}

int main() {
  // Deterministic pseudo-random initial field.
  int seed = 1618033;
  for (int i = 0; i < N; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    re[i] = (double)seed / 2147483648.0;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    im[i] = (double)seed / 2147483648.0;
  }

  fft();

  // Evolve in the spectral domain (NAS: exp(-4 alpha pi^2 k^2 t)).
  for (int i = 0; i < N; i = i + 1) {
    int k = i;
    if (k > N / 2) { k = k - N; }
    double damp = exp(-0.000001 * (double)(k * k));
    re[i] = re[i] * damp;
    im[i] = im[i] * damp;
  }

  // NAS-style checksum: sum over a stride-permuted subset.
  double csr = 0.0;
  double csi = 0.0;
  for (int j = 1; j <= 32; j = j + 1) {
    int q = (j * 17) % N;
    csr = csr + re[q];
    csi = csi + im[q];
  }
  print_double(csr);
  print_double(csi);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="FT",
        description="NAS FT: radix-2 complex FFT (bit-reversal + "
        "butterflies), spectral evolution, complex checksum",
        paper_input="B",
        input_desc="64-point complex FFT, 1 evolution step",
        source=SOURCE,
    )
)
