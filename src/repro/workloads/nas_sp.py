"""NAS SP analogue: scalar pentadiagonal line solves.

SP's ADI sweeps solve scalar pentadiagonal systems along each grid line;
reproduced as a pentadiagonal Gaussian elimination (two sub/super
diagonals) applied to several lines.
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// NAS SP analogue: scalar pentadiagonal solver, 5 lines of n = 24.
double d2[24];   // second sub-diagonal
double d1[24];   // first sub-diagonal
double d0[24];   // main diagonal
double u1[24];   // first super-diagonal
double u2[24];   // second super-diagonal
double rhs[24];
double xs[24];
int N = 24;

void solve_line(double shift) {
  for (int i = 0; i < N; i = i + 1) {
    d2[i] = 0.2;
    d1[i] = -1.1;
    d0[i] = 4.0 + shift;
    u1[i] = -1.1;
    u2[i] = 0.2;
    rhs[i] = 1.0 + 0.3 * (double)(i % 4) + shift;
  }

  // Forward elimination of the two sub-diagonals.
  for (int i = 1; i < N; i = i + 1) {
    double m1 = d1[i] / d0[i - 1];
    d0[i] = d0[i] - m1 * u1[i - 1];
    u1[i] = u1[i] - m1 * u2[i - 1];
    rhs[i] = rhs[i] - m1 * rhs[i - 1];
    if (i + 1 < N) {
      double m2 = d2[i + 1] / d0[i - 1];
      d1[i + 1] = d1[i + 1] - m2 * u1[i - 1];
      d0[i + 1] = d0[i + 1] - m2 * u2[i - 1];
      rhs[i + 1] = rhs[i + 1] - m2 * rhs[i - 1];
    }
  }

  // Back substitution.
  xs[N - 1] = rhs[N - 1] / d0[N - 1];
  xs[N - 2] = (rhs[N - 2] - u1[N - 2] * xs[N - 1]) / d0[N - 2];
  for (int i = N - 3; i >= 0; i = i - 1) {
    xs[i] = (rhs[i] - u1[i] * xs[i + 1] - u2[i] * xs[i + 2]) / d0[i];
  }
}

int main() {
  double checksum = 0.0;
  double norm = 0.0;
  for (int line = 0; line < 5; line = line + 1) {
    solve_line((double)line * 0.4);
    for (int i = 0; i < N; i = i + 1) {
      checksum = checksum + xs[i] * (double)(line + 1);
      norm = norm + xs[i] * xs[i];
    }
  }
  print_double(checksum);
  print_double(sqrt(norm));
  print_double(xs[12]);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="SP",
        description="NAS SP: scalar pentadiagonal Gaussian elimination and "
        "back-substitution along grid lines",
        paper_input="A",
        input_desc="5 lines of n=24 pentadiagonal systems",
        source=SOURCE,
    )
)
