"""NAS BT analogue: block-tridiagonal line solves.

BT's ADI sweeps solve block-tridiagonal systems along grid lines; the
reproduced kernel is a 2x2-block Thomas algorithm (forward elimination +
back-substitution) applied to several lines with different coefficients.
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// NAS BT analogue: 2x2 block tridiagonal solver over 6 lines of length 20.
// Block layout: per line, per cell k: A (sub), B (diag), C (super), rhs r.
double Bd[80];    // diag blocks, 4 doubles per cell (20 cells)
double Cd[80];    // super blocks
double Ad[80];    // sub blocks
double rr[40];    // rhs, 2 per cell
double sol[40];
int NCELL = 20;

void solve_line(double coef) {
  // Build the system for this line.
  for (int k = 0; k < NCELL; k = k + 1) {
    int b = 4 * k;
    Bd[b] = 4.0 + coef;      Bd[b + 1] = 0.5;
    Bd[b + 2] = 0.3;         Bd[b + 3] = 3.5 + coef;
    Ad[b] = -1.0; Ad[b + 1] = 0.1; Ad[b + 2] = 0.0; Ad[b + 3] = -1.0;
    Cd[b] = -1.0; Cd[b + 1] = 0.0; Cd[b + 2] = 0.2; Cd[b + 3] = -1.0;
    rr[2 * k] = 1.0 + (double)k * 0.1 + coef;
    rr[2 * k + 1] = 2.0 - (double)k * 0.05;
  }

  // Forward elimination: B_k' = B_k - A_k * B_{k-1}'^-1 * C_{k-1} etc.
  for (int k = 1; k < NCELL; k = k + 1) {
    int b = 4 * k;
    int pb = 4 * (k - 1);
    // invert previous diag block (2x2)
    double det = Bd[pb] * Bd[pb + 3] - Bd[pb + 1] * Bd[pb + 2];
    double i00 = Bd[pb + 3] / det;
    double i01 = -Bd[pb + 1] / det;
    double i10 = -Bd[pb + 2] / det;
    double i11 = Bd[pb] / det;
    // L = A_k * inv(B_{k-1})
    double l00 = Ad[b] * i00 + Ad[b + 1] * i10;
    double l01 = Ad[b] * i01 + Ad[b + 1] * i11;
    double l10 = Ad[b + 2] * i00 + Ad[b + 3] * i10;
    double l11 = Ad[b + 2] * i01 + Ad[b + 3] * i11;
    // B_k -= L * C_{k-1}
    Bd[b]     = Bd[b]     - (l00 * Cd[pb]     + l01 * Cd[pb + 2]);
    Bd[b + 1] = Bd[b + 1] - (l00 * Cd[pb + 1] + l01 * Cd[pb + 3]);
    Bd[b + 2] = Bd[b + 2] - (l10 * Cd[pb]     + l11 * Cd[pb + 2]);
    Bd[b + 3] = Bd[b + 3] - (l10 * Cd[pb + 1] + l11 * Cd[pb + 3]);
    // r_k -= L * r_{k-1}
    rr[2 * k]     = rr[2 * k]     - (l00 * rr[2 * k - 2] + l01 * rr[2 * k - 1]);
    rr[2 * k + 1] = rr[2 * k + 1] - (l10 * rr[2 * k - 2] + l11 * rr[2 * k - 1]);
  }

  // Back substitution.
  for (int k = NCELL - 1; k >= 0; k = k - 1) {
    int b = 4 * k;
    double r0 = rr[2 * k];
    double r1 = rr[2 * k + 1];
    if (k < NCELL - 1) {
      r0 = r0 - (Cd[b] * sol[2 * k + 2] + Cd[b + 1] * sol[2 * k + 3]);
      r1 = r1 - (Cd[b + 2] * sol[2 * k + 2] + Cd[b + 3] * sol[2 * k + 3]);
    }
    double det = Bd[b] * Bd[b + 3] - Bd[b + 1] * Bd[b + 2];
    sol[2 * k] = (r0 * Bd[b + 3] - r1 * Bd[b + 1]) / det;
    sol[2 * k + 1] = (r1 * Bd[b] - r0 * Bd[b + 2]) / det;
  }
}

int main() {
  double checksum = 0.0;
  for (int line = 0; line < 4; line = line + 1) {
    solve_line((double)line * 0.25);
    for (int k = 0; k < 2 * NCELL; k = k + 1) {
      checksum = checksum + sol[k] * (double)(k + 1);
    }
  }
  print_double(checksum);
  print_double(sol[0]);
  print_double(sol[39]);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="BT",
        description="NAS BT: 2x2 block-tridiagonal Thomas solves (forward "
        "elimination + back-substitution) along grid lines",
        paper_input="A",
        input_desc="4 lines x 20 cells of 2x2 blocks",
        source=SOURCE,
    )
)
