"""NAS DC analogue: data-cube (group-by) aggregation.

DC computes OLAP cube views: grouping tuples by attribute subsets and
aggregating a measure.  The reproduced kernel generates a deterministic fact
table and computes three views (group by a, by b, by (a,b) hashed), with
integer-dominated hashing, bucketing and accumulation.
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// NAS DC analogue: group-by aggregation over a generated fact table.
int attr_a[200];
int attr_b[200];
int measure[200];
int view_a[16];
int view_b[12];
int view_ab[32];
int NT = 200;

int main() {
  // Generate the fact table.
  int seed = 271828;
  for (int i = 0; i < NT; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    attr_a[i] = seed % 16;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    attr_b[i] = seed % 12;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    measure[i] = seed % 1000;
  }
  for (int i = 0; i < 16; i = i + 1) { view_a[i] = 0; }
  for (int i = 0; i < 12; i = i + 1) { view_b[i] = 0; }
  for (int i = 0; i < 32; i = i + 1) { view_ab[i] = 0; }

  // View 1: group by a.  View 2: group by b.  View 3: hash of (a, b).
  for (int i = 0; i < NT; i = i + 1) {
    int a = attr_a[i];
    int b = attr_b[i];
    int v = measure[i];
    view_a[a] = view_a[a] + v;
    view_b[b] = view_b[b] + v;
    int h = (a * 31 + b * 17) % 32;
    view_ab[h] = view_ab[h] + v;
  }

  // Verification: per-view checksums and extrema.
  int sum_a = 0;
  int max_a = 0;
  for (int i = 0; i < 16; i = i + 1) {
    sum_a = sum_a + view_a[i];
    if (view_a[i] > max_a) { max_a = view_a[i]; }
  }
  int sum_b = 0;
  for (int i = 0; i < 12; i = i + 1) { sum_b = sum_b + view_b[i] * (i + 1); }
  int sum_ab = 0;
  for (int i = 0; i < 32; i = i + 1) { sum_ab = sum_ab + view_ab[i] * i; }

  print_int(sum_a);
  print_int(max_a);
  print_int(sum_b);
  print_int(sum_ab);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="DC",
        description="NAS DC: data-cube group-by aggregation (integer "
        "hashing, bucketing, accumulation)",
        paper_input="W",
        input_desc="200 tuples, 3 views (by a, by b, hashed (a,b))",
        source=SOURCE,
    )
)
