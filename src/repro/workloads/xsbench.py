"""XSBench analogue: macroscopic cross-section lookups.

The original's hot loop is: pick a random energy, binary-search the unionized
energy grid, then gather-and-interpolate cross-sections for every nuclide in
the material.  This is memory/branch dominated with almost no arithmetic —
the mix is reproduced exactly (binary search + indexed interpolation).
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// XSBench analogue: unionized-grid cross-section lookups.
double egrid[128];
double xs0[128];
double xs1[128];
double xs2[128];
double xs3[128];
int NG = 128;
int LOOKUPS = 80;

int grid_search(double energy) {
  int lo = 0;
  int hi = NG - 1;
  while (hi - lo > 1) {
    int mid = (lo + hi) / 2;
    if (egrid[mid] <= energy) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double interp(double* xs, int idx, double frac) {
  return xs[idx] + frac * (xs[idx + 1] - xs[idx]);
}

int main() {
  // Build a sorted energy grid and per-nuclide tables deterministically.
  int seed = 97;
  double acc = 0.0;
  for (int i = 0; i < NG; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    acc = acc + 0.001 + (double)(seed % 1000) / 200000.0;
    egrid[i] = acc;
    xs0[i] = (double)(seed % 97) * 0.01 + 0.1;
    xs1[i] = (double)(seed % 89) * 0.02 + 0.2;
    xs2[i] = (double)(seed % 83) * 0.015 + 0.05;
    xs3[i] = (double)(seed % 79) * 0.025 + 0.3;
  }
  double emax = egrid[NG - 1];

  double macro_sum = 0.0;
  int vhits = 0;
  for (int l = 0; l < LOOKUPS; l = l + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    double energy = (double)(seed % 100000) / 100000.0 * emax * 0.999;
    int idx = grid_search(energy);
    double de = egrid[idx + 1] - egrid[idx];
    double frac = (energy - egrid[idx]) / de;
    double macro = 0.4 * interp(xs0, idx, frac)
                 + 0.3 * interp(xs1, idx, frac)
                 + 0.2 * interp(xs2, idx, frac)
                 + 0.1 * interp(xs3, idx, frac);
    macro_sum = macro_sum + macro;
    if (macro > 1.0) {
      vhits = vhits + 1;
    }
  }

  print_double(macro_sum);
  print_int(vhits);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="XSBench",
        description="unionized energy-grid binary search plus cross-section "
        "interpolation (memory/branch bound)",
        paper_input="-s small",
        input_desc="128-point grid, 4 nuclides, 80 lookups",
        source=SOURCE,
    )
)
