"""LULESH analogue: 1D Lagrangian shock hydrodynamics (Sod-like tube).

The original advances an unstructured hexahedral mesh through a Sedov blast;
the characteristic kernels — EOS evaluation, artificial viscosity with
compression branches, nodal force accumulation and a Courant timestep — are
reproduced on a 1D staggered mesh.
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// LULESH analogue: 1D Lagrangian hydro, 32 elements, Sod-like initial state.
double nx[25];    // node positions
double nv[25];    // node velocities
double e[24];     // element internal energy
double rho[24];   // element density
double p[24];     // element pressure
double q[24];     // artificial viscosity
double m[24];     // element mass
int NEL = 24;
double GAMMA = 1.4;

int main() {
  // Sod tube: high density/pressure left half, low right half.
  for (int i = 0; i <= NEL; i = i + 1) {
    nx[i] = (double)i / 24.0;
    nv[i] = 0.0;
  }
  for (int i = 0; i < NEL; i = i + 1) {
    if (i < 12) {
      rho[i] = 1.0;
      p[i] = 1.0;
    } else {
      rho[i] = 0.125;
      p[i] = 0.1;
    }
    double dx = nx[i + 1] - nx[i];
    m[i] = rho[i] * dx;
    e[i] = p[i] / ((GAMMA - 1.0) * rho[i]);
    q[i] = 0.0;
  }

  double t = 0.0;
  for (int step = 0; step < 7; step = step + 1) {
    // Courant timestep from sound speed.
    double dt = 1.0;
    for (int i = 0; i < NEL; i = i + 1) {
      double dx = nx[i + 1] - nx[i];
      double cs = sqrt(GAMMA * p[i] / rho[i]);
      double dtc = 0.3 * dx / (cs + 0.0001);
      if (dtc < dt) { dt = dtc; }
    }

    // Artificial viscosity: only in compression.
    for (int i = 0; i < NEL; i = i + 1) {
      double dv = nv[i + 1] - nv[i];
      if (dv < 0.0) {
        double dx = nx[i + 1] - nx[i];
        double cs = sqrt(GAMMA * p[i] / rho[i]);
        q[i] = rho[i] * (1.5 * dv * dv - 0.5 * cs * dv);
      } else {
        q[i] = 0.0;
      }
    }

    // Nodal force = pressure difference across the node; accelerate.
    for (int i = 1; i < NEL; i = i + 1) {
      double force = (p[i - 1] + q[i - 1]) - (p[i] + q[i]);
      double nodal_mass = 0.5 * (m[i - 1] + m[i]);
      nv[i] = nv[i] + dt * force / nodal_mass;
    }

    // Move nodes (ends fixed), update density/energy/pressure.
    for (int i = 1; i < NEL; i = i + 1) {
      nx[i] = nx[i] + dt * nv[i];
    }
    for (int i = 0; i < NEL; i = i + 1) {
      double dx = nx[i + 1] - nx[i];
      double rho_new = m[i] / dx;
      double dv = nv[i + 1] - nv[i];
      e[i] = e[i] - dt * (p[i] + q[i]) * dv / m[i];
      if (e[i] < 0.0) { e[i] = 0.0; }
      rho[i] = rho_new;
      p[i] = (GAMMA - 1.0) * rho[i] * e[i];
    }
    t = t + dt;
  }

  // Final-origin-energy style verification output.
  double etot = 0.0;
  for (int i = 0; i < NEL; i = i + 1) {
    etot = etot + m[i] * e[i];
  }
  print_double(t);
  print_double(etot);
  print_double(e[0]);
  print_double(p[12]);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="lulesh",
        description="1D Lagrangian shock hydrodynamics: EOS, artificial "
        "viscosity with compression branches, Courant timestep",
        paper_input="(default)",
        input_desc="Sod tube, 24 elements, 7 timesteps",
        source=SOURCE,
    )
)
