"""NAS UA analogue: unstructured adaptive mesh computation.

UA computes heat transfer on an adaptively refined unstructured mesh; its
signature behaviours are indirect gather/scatter through index arrays and
data-dependent refinement decisions.  Both are reproduced: elements with a
permuted connectivity array, a gradient sweep through indirection, and a
refinement marking pass that rebuilds the index permutation.
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// NAS UA analogue: indirect gather/scatter + adaptive refinement marking.
double temp[48];
double flux[48];
int conn[48];      // element -> node indirection (permutation)
int marks[48];
int NE = 48;

int main() {
  // Build a permuted connectivity (deterministic shuffle) and initial field.
  int seed = 6180339;
  for (int i = 0; i < NE; i = i + 1) {
    conn[i] = i;
    temp[i] = 0.0;
    marks[i] = 0;
  }
  for (int i = NE - 1; i > 0; i = i - 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    int j = seed % (i + 1);
    int tmpv = conn[i];
    conn[i] = conn[j];
    conn[j] = tmpv;
  }
  // Hot spot in the middle of the *logical* ordering.
  for (int i = 0; i < NE; i = i + 1) {
    double x = (double)i / 47.0;
    temp[conn[i]] = exp(-8.0 * (x - 0.5) * (x - 0.5));
  }

  int total_marked = 0;
  for (int pass = 0; pass < 3; pass = pass + 1) {
    // Gather through the indirection and diffuse.
    for (int i = 0; i < NE; i = i + 1) {
      int left = conn[(i + NE - 1) % NE];
      int right = conn[(i + 1) % NE];
      int center = conn[i];
      flux[center] = 0.25 * temp[left] + 0.5 * temp[center]
                   + 0.25 * temp[right];
    }
    for (int i = 0; i < NE; i = i + 1) {
      temp[i] = flux[i];
    }
    // Refinement marking: elements with steep gradient get marked and
    // their neighbourhood is re-permuted (adaptive remeshing stand-in).
    int marked = 0;
    for (int i = 1; i < NE - 1; i = i + 1) {
      double grad = fabs(temp[conn[i + 1]] - temp[conn[i - 1]]);
      if (grad > 0.01) {
        marks[i] = marks[i] + 1;
        marked = marked + 1;
        int j = (i * 7) % NE;
        int tmpv = conn[i];
        conn[i] = conn[j];
        conn[j] = tmpv;
      }
    }
    total_marked = total_marked + marked;
  }

  double checksum = 0.0;
  int mark_hash = 0;
  for (int i = 0; i < NE; i = i + 1) {
    checksum = checksum + temp[i] * (double)(i + 1);
    mark_hash = (mark_hash * 31 + marks[i]) % 1000000007;
  }
  print_double(checksum);
  print_int(total_marked);
  print_int(mark_hash);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="UA",
        description="NAS UA: indirect gather/scatter through permuted "
        "connectivity plus data-dependent refinement marking",
        paper_input="B",
        input_desc="48 elements, 3 adaptive passes",
        source=SOURCE,
    )
)
