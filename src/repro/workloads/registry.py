"""Workload registry: the 14 benchmark programs of the paper's Table 3.

Each workload is a scaled-down MiniC analogue of the original proxy app /
NAS benchmark, chosen to preserve the *instruction mix* that drives its
outcome distribution in Figure 4 (FP-heavy force loops, pointer-chasing
table lookups, integer aggregation, branchy solvers, ...).  Inputs are
deterministic so the golden-output comparison is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark program."""

    name: str
    description: str
    #: the paper's Table 3 "input" column for the original program
    paper_input: str
    #: our scaled-down input description
    input_desc: str
    source: str


_REGISTRY: dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    if spec.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> dict[str, WorkloadSpec]:
    _ensure_loaded()
    return dict(_REGISTRY)


def workload_names() -> list[str]:
    _ensure_loaded()
    return list(_REGISTRY)


def workload_sources() -> dict[str, str]:
    """name -> MiniC source, for campaign matrices."""
    _ensure_loaded()
    return {name: spec.source for name, spec in _REGISTRY.items()}


_LOADED = False


def _ensure_loaded() -> None:
    """Import all workload modules (each self-registers)."""
    global _LOADED
    if _LOADED:
        return
    from repro.workloads import (  # noqa: F401
        amg2013,
        comd,
        hpccg,
        lulesh,
        minife,
        nas_bt,
        nas_cg,
        nas_dc,
        nas_ep,
        nas_ft,
        nas_lu,
        nas_sp,
        nas_ua,
        xsbench,
    )
    _LOADED = True


# ---------------------------------------------------------------------------
# Lifecycle registry: named describe/populate/run/validate contracts the
# campaign service binds queue rows to (see repro.service.lifecycle).  They
# live here, next to the workloads they draw programs from, so anything
# that can name a workload can also name how campaigns over it behave.
# ---------------------------------------------------------------------------

_LIFECYCLES: dict[str, object] = {}
_LIFECYCLES_LOADED = False


def register_lifecycle(lifecycle) -> object:
    """Register a :class:`repro.service.lifecycle.WorkloadLifecycle`
    instance under its ``name`` (last registration wins, so tests can
    shadow the built-ins)."""
    name = getattr(lifecycle, "name", None)
    if not isinstance(name, str) or not name:
        raise WorkloadError("lifecycle needs a non-empty string 'name'")
    _LIFECYCLES[name] = lifecycle
    return lifecycle


def get_lifecycle(name: str):
    """Look up a lifecycle by name (loading the built-ins on first use)."""
    _ensure_lifecycles_loaded()
    try:
        return _LIFECYCLES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown lifecycle {name!r}; available: {sorted(_LIFECYCLES)}"
        ) from None


def lifecycle_names() -> list[str]:
    _ensure_lifecycles_loaded()
    return sorted(_LIFECYCLES)


def _ensure_lifecycles_loaded() -> None:
    """Import the service's lifecycle module (it self-registers).  Lazy so
    :mod:`repro.workloads` never hard-depends on the service package."""
    global _LIFECYCLES_LOADED
    if _LIFECYCLES_LOADED:
        return
    import repro.service.lifecycle  # noqa: F401

    _LIFECYCLES_LOADED = True
