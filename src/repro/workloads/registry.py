"""Workload registry: the 14 benchmark programs of the paper's Table 3.

Each workload is a scaled-down MiniC analogue of the original proxy app /
NAS benchmark, chosen to preserve the *instruction mix* that drives its
outcome distribution in Figure 4 (FP-heavy force loops, pointer-chasing
table lookups, integer aggregation, branchy solvers, ...).  Inputs are
deterministic so the golden-output comparison is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark program."""

    name: str
    description: str
    #: the paper's Table 3 "input" column for the original program
    paper_input: str
    #: our scaled-down input description
    input_desc: str
    source: str


_REGISTRY: dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    if spec.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> dict[str, WorkloadSpec]:
    _ensure_loaded()
    return dict(_REGISTRY)


def workload_names() -> list[str]:
    _ensure_loaded()
    return list(_REGISTRY)


def workload_sources() -> dict[str, str]:
    """name -> MiniC source, for campaign matrices."""
    _ensure_loaded()
    return {name: spec.source for name, spec in _REGISTRY.items()}


_LOADED = False


def _ensure_loaded() -> None:
    """Import all workload modules (each self-registers)."""
    global _LOADED
    if _LOADED:
        return
    from repro.workloads import (  # noqa: F401
        amg2013,
        comd,
        hpccg,
        lulesh,
        minife,
        nas_bt,
        nas_cg,
        nas_dc,
        nas_ep,
        nas_ft,
        nas_lu,
        nas_sp,
        nas_ua,
        xsbench,
    )
    _LOADED = True
