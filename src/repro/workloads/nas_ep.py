"""NAS EP analogue: embarrassingly parallel Gaussian-pair generation.

EP generates uniform pseudo-random pairs, accepts those inside the unit
circle, transforms them to Gaussian deviates (Marsaglia polar method with
log/sqrt), and tallies them into concentric square annuli.
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// NAS EP analogue: Gaussian deviates via the polar method, annulus tallies.
int qcounts[10];
int NPAIRS = 150;

int main() {
  int seed = 141421356;
  double sx = 0.0;
  double sy = 0.0;
  int accepted = 0;
  for (int i = 0; i < 10; i = i + 1) { qcounts[i] = 0; }

  for (int k = 0; k < NPAIRS; k = k + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    double u1 = (double)seed / 2147483648.0;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    double u2 = (double)seed / 2147483648.0;
    double x = 2.0 * u1 - 1.0;
    double y = 2.0 * u2 - 1.0;
    double t = x * x + y * y;
    if (t <= 1.0 && t > 0.0) {
      double factor = sqrt(-2.0 * log(t) / t);
      double gx = x * factor;
      double gy = y * factor;
      sx = sx + gx;
      sy = sy + gy;
      accepted = accepted + 1;
      double ax = fabs(gx);
      double ay = fabs(gy);
      double amax = ax;
      if (ay > ax) { amax = ay; }
      int ring = (int)amax;
      if (ring < 10) {
        qcounts[ring] = qcounts[ring] + 1;
      }
    }
  }

  print_int(accepted);
  print_double(sx);
  print_double(sy);
  int qsum = 0;
  for (int i = 0; i < 10; i = i + 1) { qsum = qsum + qcounts[i] * (i + 1); }
  print_int(qsum);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="EP",
        description="NAS EP: uniform pair generation, polar-method Gaussian "
        "transform (log/sqrt), annulus tallies",
        paper_input="A",
        input_desc="150 pairs, 10 annuli",
        source=SOURCE,
    )
)
