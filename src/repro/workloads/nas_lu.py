"""NAS LU analogue: SSOR sweeps on a banded system.

LU applies symmetric successive over-relaxation (lower then upper triangular
sweeps) to the discretized Navier-Stokes operator.  Reproduced as SSOR
iterations on a 2D 5-point-stencil system stored in flat arrays, with the
L-sweep/U-sweep structure and an L2 residual norm.
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// NAS LU analogue: SSOR on a 12x12 5-point Poisson system.
double uu[100];
double ff[100];
double res[100];
int NX = 10;
double OMEGA = 1.2;

double residual_norm() {
  double s = 0.0;
  for (int j = 1; j < NX - 1; j = j + 1) {
    for (int i = 1; i < NX - 1; i = i + 1) {
      int c = j * NX + i;
      double r = ff[c] - (4.0 * uu[c] - uu[c - 1] - uu[c + 1]
                          - uu[c - NX] - uu[c + NX]);
      res[c] = r;
      s = s + r * r;
    }
  }
  return sqrt(s);
}

int main() {
  for (int j = 0; j < NX; j = j + 1) {
    for (int i = 0; i < NX; i = i + 1) {
      int c = j * NX + i;
      uu[c] = 0.0;
      double x = (double)i / 9.0;
      double y = (double)j / 9.0;
      ff[c] = x * y * (1.0 - x) * (1.0 - y) * 32.0;
    }
  }

  for (int sweep = 0; sweep < 4; sweep = sweep + 1) {
    // Lower-triangular sweep (forward ordering).
    for (int j = 1; j < NX - 1; j = j + 1) {
      for (int i = 1; i < NX - 1; i = i + 1) {
        int c = j * NX + i;
        double gs = 0.25 * (uu[c - 1] + uu[c + 1] + uu[c - NX] + uu[c + NX]
                            + ff[c]);
        uu[c] = uu[c] + OMEGA * (gs - uu[c]);
      }
    }
    // Upper-triangular sweep (backward ordering).
    for (int j = NX - 2; j >= 1; j = j - 1) {
      for (int i = NX - 2; i >= 1; i = i - 1) {
        int c = j * NX + i;
        double gs = 0.25 * (uu[c - 1] + uu[c + 1] + uu[c - NX] + uu[c + NX]
                            + ff[c]);
        uu[c] = uu[c] + OMEGA * (gs - uu[c]);
      }
    }
  }

  double rnorm = residual_norm();
  double unorm = 0.0;
  for (int c = 0; c < NX * NX; c = c + 1) { unorm = unorm + uu[c] * uu[c]; }
  print_double(rnorm);
  print_double(sqrt(unorm));
  print_double(uu[55]);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="LU",
        description="NAS LU: SSOR lower/upper triangular sweeps on a 2D "
        "5-point stencil with residual norm",
        paper_input="A",
        input_desc="10x10 grid, 4 SSOR sweeps, omega=1.2",
        source=SOURCE,
    )
)
