"""NAS CG analogue: eigenvalue estimation by inverse power iteration.

NAS CG estimates the largest eigenvalue of a random sparse matrix via CG
solves inside a power iteration; reproduced with a deterministic sparse
matrix in CSR-like flat arrays, CG inner solves, and the zeta estimate.
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// NAS CG analogue: power iteration with CG inner solve on sparse A. n = 32.
double aval[96];   // 4 nonzeros per row
int acol[96];
double xx[24];
double zz[24];
double rr[24];
double pp[24];
double qq[24];
int N = 24;
int NNZ_PER_ROW = 4;

void spmv(double* v, double* out) {
  for (int i = 0; i < N; i = i + 1) {
    double s = 0.0;
    for (int j = 0; j < NNZ_PER_ROW; j = j + 1) {
      int k = i * NNZ_PER_ROW + j;
      s = s + aval[k] * v[acol[k]];
    }
    out[i] = s;
  }
}

double dot(double* a, double* b) {
  double s = 0.0;
  for (int i = 0; i < N; i = i + 1) { s = s + a[i] * b[i]; }
  return s;
}

int main() {
  // Deterministic sparse SPD-ish matrix: strong diagonal + random coupling.
  int seed = 314159;
  for (int i = 0; i < N; i = i + 1) {
    int base = i * NNZ_PER_ROW;
    aval[base] = 10.0 + (double)(i % 7);
    acol[base] = i;
    for (int j = 1; j < NNZ_PER_ROW; j = j + 1) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      acol[base + j] = seed % N;
      aval[base + j] = ((double)(seed % 200) / 100.0 - 1.0) * 0.5;
    }
  }
  for (int i = 0; i < N; i = i + 1) { xx[i] = 1.0; }

  double zeta = 0.0;
  for (int outer = 0; outer < 2; outer = outer + 1) {
    // CG solve A z = x (few iterations, like NAS cgitmax).
    for (int i = 0; i < N; i = i + 1) {
      zz[i] = 0.0;
      rr[i] = xx[i];
      pp[i] = xx[i];
    }
    double rho = dot(rr, rr);
    for (int it = 0; it < 6; it = it + 1) {
      spmv(pp, qq);
      double alpha = rho / dot(pp, qq);
      for (int i = 0; i < N; i = i + 1) {
        zz[i] = zz[i] + alpha * pp[i];
        rr[i] = rr[i] - alpha * qq[i];
      }
      double rho_new = dot(rr, rr);
      double beta = rho_new / rho;
      rho = rho_new;
      for (int i = 0; i < N; i = i + 1) { pp[i] = rr[i] + beta * pp[i]; }
    }
    // zeta = shift + 1 / (x' z); x = z / ||z||.
    double xz = dot(xx, zz);
    zeta = 20.0 + 1.0 / xz;
    double znorm = sqrt(dot(zz, zz));
    for (int i = 0; i < N; i = i + 1) { xx[i] = zz[i] / znorm; }
  }

  print_double(zeta);
  double rnorm = sqrt(dot(rr, rr));
  print_double(rnorm);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="CG",
        description="NAS CG: power iteration with conjugate-gradient inner "
        "solves on an irregular sparse matrix",
        paper_input="B",
        input_desc="n=24, 4 nnz/row, 2 outer x 6 inner iterations",
        source=SOURCE,
    )
)
