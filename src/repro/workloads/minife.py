"""miniFE analogue: finite-element assembly followed by a CG solve.

The original assembles a hex-element stiffness matrix then runs CG; both
phases are reproduced (1D linear elements -> tridiagonal stiffness, then the
same CG kernels as HPCCG but on the assembled operator with a source term).
"""

from repro.workloads.registry import WorkloadSpec, register

SOURCE = r"""
// miniFE analogue: assemble 1D FE stiffness + mass, solve with CG. n = 40.
double kd[28];    // stiffness diagonal
double ko[28];    // stiffness off-diagonal (to the right)
double bv[28];
double xv[28];
double rv[28];
double pv[28];
double Ap[28];
int N = 28;

void matvec(double* x, double* y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    double s = kd[i] * x[i];
    if (i > 0) { s = s + ko[i - 1] * x[i - 1]; }
    if (i < n - 1) { s = s + ko[i] * x[i + 1]; }
    y[i] = s;
  }
}

double dot(double* a, double* b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i = i + 1) { s = s + a[i] * b[i]; }
  return s;
}

int main() {
  double h = 1.0 / 29.0;
  // Element-by-element assembly: K_e = (1/h) [[1,-1],[-1,1]].
  for (int i = 0; i < N; i = i + 1) {
    kd[i] = 0.0;
    ko[i] = 0.0;
    bv[i] = 0.0;
    xv[i] = 0.0;
  }
  for (int el = 0; el <= N; el = el + 1) {
    double ke = 1.0 / h;
    double fe = 0.5 * h;                 // uniform body force
    int left = el - 1;
    int right = el;
    if (left >= 0) {
      kd[left] = kd[left] + ke;
      bv[left] = bv[left] + fe;
    }
    if (right < N) {
      kd[right] = kd[right] + ke;
      bv[right] = bv[right] + fe;
    }
    if (left >= 0 && right < N) {
      ko[left] = ko[left] - ke;
    }
  }

  // CG solve.
  for (int i = 0; i < N; i = i + 1) { rv[i] = bv[i]; pv[i] = bv[i]; }
  double rtrans = dot(rv, rv, N);
  int iters = 0;
  for (int k = 0; k < 10; k = k + 1) {
    matvec(pv, Ap, N);
    double alpha = rtrans / dot(pv, Ap, N);
    for (int i = 0; i < N; i = i + 1) {
      xv[i] = xv[i] + alpha * pv[i];
      rv[i] = rv[i] - alpha * Ap[i];
    }
    double rnew = dot(rv, rv, N);
    double beta = rnew / rtrans;
    rtrans = rnew;
    for (int i = 0; i < N; i = i + 1) { pv[i] = rv[i] + beta * pv[i]; }
    iters = iters + 1;
    if (rtrans < 0.0000000001) { break; }
  }

  // Strain-energy style verification.
  matvec(xv, Ap, N);
  print_int(iters);
  print_double(sqrt(rtrans));
  print_double(0.5 * dot(xv, Ap, N));
  print_double(xv[14]);
  return 0;
}
"""

register(
    WorkloadSpec(
        name="miniFE",
        description="finite-element stiffness assembly followed by a CG "
        "solve (assembly scatter + sparse kernels)",
        paper_input="-nx 18 -ny 16 -nz 16",
        input_desc="1D linear elements n=28, 10 CG iterations",
        source=SOURCE,
    )
)
