"""Differential oracles for the fuzzing harness.

Each oracle takes one IR module and answers "do two independent ways of
executing this program agree?":

* :class:`InterpOracle` — the reference interpreter vs the fully compiled
  binary.  Catches bugs anywhere in the pipeline (passes, isel, regalloc,
  frame lowering, peephole, CPU).
* :class:`PipelineOracle` — the O0 binary vs the full O2 pass pipeline.
  Catches miscompiles introduced by the optimizer specifically.
* :class:`ZeroInterferenceOracle` — REFINE's core instrumentation claim
  (paper Section 3): a binary instrumented with ``fi_check`` hooks but with
  *no fault armed* must produce output **and** a dynamic-instruction trace
  identical to the uninstrumented golden run, modulo the hooks themselves.

Modules are cloned before every compile because :func:`compile_ir` mutates
its input (pass pipeline + pre-isel lowering).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.compiler import CompileOptions, compile_ir
from repro.fi.config import FIConfig
from repro.fi.refine import refine_instrument
from repro.ir import Module, clone_module
from repro.machine.cpu import CPU, ExecutionResult
from repro.machine.loader import LoadedProgram, load_binary
from repro.testing.interp import interpret
from repro.workloads import get_workload

#: Step budgets for fuzzed programs.  Generated programs terminate in a few
#: thousand steps; these limits only trip on reducer-created infinite loops.
#: The machine budget is much larger than the interpreter budget (one IR
#: instruction lowers to several machine instructions) so that any program
#: finite under the interpreter budget also finishes on the machine — the
#: two engines may then only ever time out *together*.
INTERP_BUDGET = 200_000
MACHINE_BUDGET = 20_000_000


@dataclass(frozen=True)
class RunOutcome:
    """The externally observable behaviour of one execution."""

    engine: str
    exit_code: int
    trap: str | None
    output: tuple[str, ...]
    #: per-instruction execution counts with FI hook sites filtered out
    #: (only populated by the zero-interference oracle)
    trace: tuple[int, ...] | None = None

    def behaviour(self) -> tuple:
        return (self.exit_code, self.trap, self.output)

    def summary(self) -> str:
        out = f"{len(self.output)} lines"
        tail = f", trap={self.trap}" if self.trap else ""
        return f"{self.engine}: exit={self.exit_code}{tail}, output={out}"


@dataclass
class Divergence:
    """A confirmed disagreement between two execution strategies."""

    oracle: str
    detail: str
    expected: RunOutcome | None = None
    actual: RunOutcome | None = None
    seed: int | None = None

    def describe(self) -> str:
        lines = [f"[{self.oracle}] {self.detail}"]
        for outcome in (self.expected, self.actual):
            if outcome is not None:
                lines.append("  " + outcome.summary())
        if (
            self.expected is not None
            and self.actual is not None
            and self.expected.output != self.actual.output
        ):
            for i, (a, b) in enumerate(
                zip(self.expected.output, self.actual.output)
            ):
                if a != b:
                    lines.append(f"  first differing line {i}: {a!r} vs {b!r}")
                    break
            else:
                lines.append(
                    f"  output lengths differ: {len(self.expected.output)}"
                    f" vs {len(self.actual.output)}"
                )
        return "\n".join(lines)


def interp_outcome(module: Module, budget: int = INTERP_BUDGET) -> RunOutcome:
    """Execute ``module`` on the reference interpreter."""
    result = interpret(clone_module(module), budget=budget)
    return RunOutcome(
        engine="interp",
        exit_code=result.exit_code,
        trap=result.trap,
        output=tuple(result.output),
    )


def _run_binary(
    module: Module, opt_level: str, mir_pass=None, budget: int = MACHINE_BUDGET
) -> tuple[ExecutionResult, LoadedProgram]:
    binary = compile_ir(
        clone_module(module),
        CompileOptions(opt_level=opt_level, mir_pass=mir_pass),
    )
    program = load_binary(binary)
    return CPU(program).run(budget=budget), program


def compiled_outcome(
    module: Module, opt_level: str = "O2", budget: int = MACHINE_BUDGET
) -> RunOutcome:
    """Compile ``module`` at ``opt_level`` and execute it on the machine."""
    result, _ = _run_binary(module, opt_level, budget=budget)
    return RunOutcome(
        engine=f"machine-{opt_level}",
        exit_code=result.exit_code,
        trap=result.trap,
        output=tuple(result.output),
    )


def _agree(a: RunOutcome, b: RunOutcome) -> bool:
    """Outcome equality, with one exception: the budgets of the two engines
    are in different units (IR steps vs machine instructions), so when both
    sides hit their budget the truncation points differ — a mutual timeout
    counts as agreement instead of comparing partial output."""
    if a.trap == "timeout" and b.trap == "timeout":
        return True
    return a.behaviour() == b.behaviour()


class Oracle:
    """Base class: check one module, return a :class:`Divergence` or None."""

    name = "oracle"
    description = ""

    def check(self, module: Module) -> Divergence | None:
        raise NotImplementedError


class InterpOracle(Oracle):
    """Reference interpreter vs the fully optimized compiled binary."""

    name = "interp"
    description = "reference IR interpreter vs compiled binary"

    def __init__(
        self,
        opt_level: str = "O2",
        interp_budget: int = INTERP_BUDGET,
        machine_budget: int = MACHINE_BUDGET,
    ) -> None:
        self.opt_level = opt_level
        self.interp_budget = interp_budget
        self.machine_budget = machine_budget

    def check(self, module: Module) -> Divergence | None:
        expected = interp_outcome(module, budget=self.interp_budget)
        actual = compiled_outcome(
            module, self.opt_level, budget=self.machine_budget
        )
        if not _agree(expected, actual):
            return Divergence(
                oracle=self.name,
                detail=f"interpreter and {self.opt_level} binary disagree",
                expected=expected,
                actual=actual,
            )
        return None


class PipelineOracle(Oracle):
    """Unoptimized vs fully optimized compilation of the same module."""

    name = "pipeline"
    description = "O0 binary vs full O2 pass pipeline"

    def check(self, module: Module) -> Divergence | None:
        expected = compiled_outcome(module, "O0")
        actual = compiled_outcome(module, "O2")
        if not _agree(expected, actual):
            return Divergence(
                oracle=self.name,
                detail="O0 and O2 binaries disagree",
                expected=expected,
                actual=actual,
            )
        return None


class ZeroInterferenceOracle(Oracle):
    """Instrumented-but-idle binary must match the golden run exactly.

    This is the property that justifies trusting REFINE campaign results:
    splicing ``fi_check`` pseudo-instructions after every candidate must not
    change what the program computes, prints, or even *executes* — after
    masking out the hook sites, the per-instruction execution counts of the
    instrumented run must equal the golden run's counts instruction for
    instruction.
    """

    name = "zero"
    description = "REFINE-instrumented (no fault) vs golden run"

    def __init__(self, opt_level: str = "O2", config: FIConfig | None = None) -> None:
        self.opt_level = opt_level
        self.config = config or FIConfig()

    def check(self, module: Module) -> Divergence | None:
        golden_result, golden_prog = _run_binary(module, self.opt_level)

        def instrument(binary) -> None:
            refine_instrument(binary, self.config)

        instr_result, instr_prog = _run_binary(
            module, self.opt_level, mir_pass=instrument
        )
        hook_pcs = set(instr_prog.fi_check_pcs)

        golden = RunOutcome(
            engine="golden",
            exit_code=golden_result.exit_code,
            trap=golden_result.trap,
            output=tuple(golden_result.output),
            trace=tuple(golden_result.counts),
        )
        instrumented = RunOutcome(
            engine="instrumented",
            exit_code=instr_result.exit_code,
            trap=instr_result.trap,
            output=tuple(instr_result.output),
            trace=tuple(
                count
                for pc, count in enumerate(instr_result.counts)
                if pc not in hook_pcs
            ),
        )
        if not _agree(golden, instrumented):
            return Divergence(
                oracle=self.name,
                detail="instrumentation changed program behaviour",
                expected=golden,
                actual=instrumented,
            )
        if golden.trap != "timeout" and golden.trace != instrumented.trace:
            first = next(
                (
                    i
                    for i, (a, b) in enumerate(zip(golden.trace, instrumented.trace))
                    if a != b
                ),
                min(len(golden.trace), len(instrumented.trace)),
            )
            return Divergence(
                oracle=self.name,
                detail=(
                    "instrumentation perturbed the dynamic-instruction trace "
                    f"(first mismatch at filtered pc {first}; "
                    f"{len(golden.trace)} golden vs "
                    f"{len(instrumented.trace)} filtered instrumented pcs)"
                ),
                expected=golden,
                actual=instrumented,
            )
        return None


class EngineOracle(Oracle):
    """Fast block-compiled execution engine vs the reference dispatch loop.

    The free-run engine (:mod:`repro.engine`) must be *bit-identical* to
    ``CPU._loop`` — same output, same exit code, same trap and trap pc,
    same dynamic-instruction counts, same step total.  Both sides run under
    the **same** machine budget, so unlike the cross-representation oracles
    above there is no timeout leniency: a mutual timeout must truncate at
    exactly the same step.
    """

    name = "engine"
    description = "fast block-compiled engine vs reference dispatch loop"

    def __init__(
        self, opt_level: str = "O2", budget: int = MACHINE_BUDGET
    ) -> None:
        self.opt_level = opt_level
        self.budget = budget

    def check(self, module: Module) -> Divergence | None:
        from repro.engine import get_engine

        binary = compile_ir(
            clone_module(module), CompileOptions(opt_level=self.opt_level)
        )
        program = load_binary(binary)
        ref = CPU(program).run(budget=self.budget)
        fast = get_engine("fast").run(CPU(program), budget=self.budget)
        expected = RunOutcome(
            engine="reference",
            exit_code=ref.exit_code,
            trap=ref.trap,
            output=tuple(ref.output),
            trace=tuple(ref.counts),
        )
        actual = RunOutcome(
            engine="fast",
            exit_code=fast.exit_code,
            trap=fast.trap,
            output=tuple(fast.output),
            trace=tuple(fast.counts),
        )
        if (
            expected.behaviour() != actual.behaviour()
            or expected.trace != actual.trace
            or ref.steps != fast.steps
            or ref.trap_pc != fast.trap_pc
        ):
            return Divergence(
                oracle=self.name,
                detail=(
                    "fast engine diverged from the reference loop "
                    f"(steps {ref.steps} vs {fast.steps}, "
                    f"trap_pc {ref.trap_pc} vs {fast.trap_pc})"
                ),
                expected=expected,
                actual=actual,
            )
        return None


class SchedulerOracle(Oracle):
    """Golden-cursor fork/resume machinery vs an uninterrupted fast run.

    The trigger scheduler (:mod:`repro.campaign.schedule`) rests on three
    engine primitives: :meth:`~repro.engine.fast.FastEngine.run_cursor`
    (advance one CPU with fork and sync captures at counter crossings and
    step multiples), :func:`~repro.snapshot.state.capture_snapshot` /
    :func:`~repro.snapshot.state.restore_snapshot` (freeze and revive the
    full architectural state), and
    :meth:`~repro.engine.fast.FastEngine.resume_synced` (run from a fork
    with exact-step pauses).  On an arbitrary program those must be
    behaviour-preserving: the cursor run must equal the plain run bit for
    bit, and a fresh CPU restored from *any* fork must finish with the
    plain run's output, exit code, per-pc counts and step total.
    """

    name = "scheduler"
    description = "golden-cursor fork/resume vs uninterrupted fast run"

    def __init__(
        self, opt_level: str = "O2", budget: int = MACHINE_BUDGET
    ) -> None:
        self.opt_level = opt_level
        self.budget = budget

    def check(self, module: Module) -> Divergence | None:
        from repro.engine import get_engine
        from repro.snapshot.state import (
            base_pages,
            capture_snapshot,
            restore_snapshot,
        )

        def instrument(binary) -> None:
            refine_instrument(binary, FIConfig())

        binary = compile_ir(
            clone_module(module),
            CompileOptions(opt_level=self.opt_level, mir_pass=instrument),
        )
        program = load_binary(binary)
        engine = get_engine("fast")
        plain_cpu = CPU(program)
        plain = engine.run(plain_cpu, budget=self.budget)
        total = plain_cpu._refine_count
        if plain.trap is not None or total <= 0:
            # Trapping/timeout programs never reach the scheduler (the
            # golden run must be clean); nothing to fork without candidates.
            return None
        expected = RunOutcome(
            engine="fast-plain",
            exit_code=plain.exit_code,
            trap=plain.trap,
            output=tuple(plain.output),
            trace=tuple(plain.counts),
        )

        def outcome_of(result, label: str) -> RunOutcome:
            return RunOutcome(
                engine=label,
                exit_code=result.exit_code,
                trap=result.trap,
                output=tuple(result.output),
                trace=tuple(result.counts),
            )

        def diverged(result, label: str) -> Divergence | None:
            actual = outcome_of(result, label)
            if (
                expected.behaviour() != actual.behaviour()
                or expected.trace != actual.trace
                or result.steps != plain.steps
            ):
                return Divergence(
                    oracle=self.name,
                    detail=(
                        f"{label} diverged from the uninterrupted run "
                        f"(steps {plain.steps} vs {result.steps})"
                    ),
                    expected=expected,
                    actual=actual,
                )
            return None

        # A handful of trigger counters spread over the run, plus sync
        # captures at an interval that does not align with block boundaries.
        triggers = sorted(
            t for t in {1, total // 3 + 1, 2 * total // 3 + 1, total}
            if 1 <= t <= total
        )
        base = base_pages(program)
        forks: dict[int, object] = {}
        sync_states: dict[int, object] = {}
        pending = list(triggers)
        prev = None

        def fork_hook(c, pc, upto):
            nonlocal prev
            snap = capture_snapshot(c, pc, prev=prev, base=base)
            prev = snap
            while pending and pending[0] <= upto:
                forks[pending.pop(0)] = snap
            return pending[0] if pending else None

        def sync_hook(c, pc) -> None:
            nonlocal prev
            snap = capture_snapshot(c, pc, prev=prev, base=base)
            prev = snap
            sync_states[snap.steps] = snap

        interval = max(1, plain.steps // 7)
        sync_steps = list(range(interval, plain.steps, interval))
        cursor = engine.run_cursor(
            CPU(program),
            budget=self.budget,
            counter="refine_count",
            first_stop=triggers[0],
            fork_hook=fork_hook,
            syncs=sync_steps,
            sync_hook=sync_hook,
        )
        problem = diverged(cursor, "fork/sync cursor")
        if problem is not None:
            return problem
        if pending:
            return Divergence(
                oracle=self.name,
                detail=(
                    f"cursor finished without forking for trigger(s) "
                    f"{pending} (of {total} candidates)"
                ),
                expected=expected,
            )
        for trigger, snap in sorted(forks.items()):
            if snap.counter("refine_count") >= trigger:
                return Divergence(
                    oracle=self.name,
                    detail=(
                        f"fork for trigger {trigger} was captured after the "
                        f"trigger ({snap.counter('refine_count')} candidates "
                        "already executed) — resuming would skip the "
                        "injection point"
                    ),
                    expected=expected,
                )
            tail = CPU(program)
            restore_snapshot(tail, snap)
            result = engine.resume_synced(
                tail, snap.pc, self.budget,
                [s for s in sync_steps if s > snap.steps],
                lambda c, pc: False,
            )
            problem = diverged(result, f"tail forked at trigger {trigger}")
            if problem is not None:
                return problem
        return None


#: Registry used by ``refine-fuzz --oracle`` and the test-suite.
ORACLES: dict[str, Oracle] = {
    "interp": InterpOracle(),
    "pipeline": PipelineOracle(),
    "zero": ZeroInterferenceOracle(),
    "engine": EngineOracle(),
    "scheduler": SchedulerOracle(),
}


def check_workload_zero_interference(
    name: str, snapshot_interval: int | None = None
) -> Divergence | None:
    """Run the zero-interference oracle on one registered MiniC workload.

    With ``snapshot_interval`` (``0`` = auto), additionally cross-check the
    snapshot fast path: injections served from golden-run snapshots must be
    bit-identical to from-scratch runs — the same claim, one layer up.
    """
    from repro.frontend import compile_source

    spec = get_workload(name)
    module = compile_source(spec.source)
    module.name = spec.name
    divergence = ZeroInterferenceOracle().check(module)
    if divergence is not None or snapshot_interval is None:
        return divergence
    return check_workload_snapshot_equivalence(name, snapshot_interval)


def _tool_supports_model(tool_cls, fault_model: str | None) -> bool:
    """Whether ``tool_cls`` can run ``fault_model`` (e.g. LLFI cannot host
    opcode corruption); ``None`` means the default model, always fine."""
    if fault_model is None:
        return True
    from repro.errors import CampaignError
    from repro.fi.models import resolve_fault_model

    try:
        resolve_fault_model(fault_model).check_tool(tool_cls)
    except CampaignError:
        return False
    return True


def check_workload_snapshot_equivalence(
    name: str,
    snapshot_interval: int = 0,
    seeds: range = range(4),
    fault_model: str | None = None,
) -> Divergence | None:
    """Snapshot fast path vs from-scratch injection on one workload.

    For every tool, runs the same seeds through a snapshot-enabled tool and
    a plain one and demands identical ``ExecutionResult`` observables
    (outcome behaviour, output, dynamic trace, step and cycle counts).
    ``fault_model`` (a :mod:`repro.fi.models` spec) runs the comparison
    under that model; tools that cannot host it are skipped.
    """
    from repro.fi.tools import TOOL_CLASSES, TOOL_ORDER

    spec = get_workload(name)
    for tool_name in TOOL_ORDER:
        if not _tool_supports_model(TOOL_CLASSES[tool_name], fault_model):
            continue
        scratch = TOOL_CLASSES[tool_name](
            spec.source, workload=spec.name, fault_model=fault_model
        )
        snapped = TOOL_CLASSES[tool_name](
            spec.source, workload=spec.name, fault_model=fault_model
        )
        snapped.enable_snapshots(interval=snapshot_interval)
        for seed in seeds:
            a = scratch.inject(seed)
            b = snapped.inject(seed)
            expected = RunOutcome(
                engine=f"{tool_name}-scratch",
                exit_code=a.result.exit_code,
                trap=a.result.trap,
                output=tuple(a.result.output),
                trace=tuple(a.result.counts),
            )
            actual = RunOutcome(
                engine=f"{tool_name}-snapshot",
                exit_code=b.result.exit_code,
                trap=b.result.trap,
                output=tuple(b.result.output),
                trace=tuple(b.result.counts),
            )
            if (
                expected.behaviour() != actual.behaviour()
                or expected.trace != actual.trace
                or a.result.steps != b.result.steps
                or abs(a.cycles - b.cycles) > 1e-9
            ):
                return Divergence(
                    oracle="snapshot",
                    detail=(
                        f"snapshot-served injection diverged from the "
                        f"from-scratch run ({name}/{tool_name}"
                        f"{'/' + fault_model if fault_model else ''}, "
                        f"steps {a.result.steps} vs {b.result.steps}, "
                        f"cycles {a.cycles} vs {b.cycles})"
                    ),
                    expected=expected,
                    actual=actual,
                    seed=seed,
                )
    return None


def check_workload_engine_equivalence(
    name: str,
    snapshot_interval: int | None = None,
    seeds: range = range(4),
    fault_model: str | None = None,
) -> Divergence | None:
    """Fast execution engine vs the reference engine on one workload.

    For every tool, builds one reference-engine tool and one fast-engine
    tool and demands identical golden profiles and identical injection
    results for the same seeds — the fault-campaign-level statement of the
    :class:`EngineOracle` property.  With ``snapshot_interval`` (``0`` =
    auto) the comparison is repeated with the snapshot fast path enabled on
    both sides, so the engine is also exercised through golden-run
    recording and mid-run :meth:`~repro.machine.cpu.CPU.resume`.
    """
    from repro.fi.tools import TOOL_CLASSES, TOOL_ORDER

    spec = get_workload(name)
    intervals: list[int | None] = [None]
    if snapshot_interval is not None:
        intervals.append(snapshot_interval)
    for tool_name in TOOL_ORDER:
        if not _tool_supports_model(TOOL_CLASSES[tool_name], fault_model):
            continue
        for interval in intervals:
            ref = TOOL_CLASSES[tool_name](
                spec.source, workload=spec.name, engine="reference",
                fault_model=fault_model,
            )
            fast = TOOL_CLASSES[tool_name](
                spec.source, workload=spec.name, engine="fast",
                fault_model=fault_model,
            )
            if interval is not None:
                ref.enable_snapshots(interval=interval)
                fast.enable_snapshots(interval=interval)
            mode = "scratch" if interval is None else "snapshot"
            rp, fp = ref.profile, fast.profile
            if (
                rp.golden_output != fp.golden_output
                or rp.steps != fp.steps
                or rp.total_candidates != fp.total_candidates
            ):
                return Divergence(
                    oracle="engine",
                    detail=(
                        f"golden profiles diverge ({name}/{tool_name}, "
                        f"steps {rp.steps} vs {fp.steps}, candidates "
                        f"{rp.total_candidates} vs {fp.total_candidates})"
                    ),
                )
            for seed in seeds:
                a = ref.inject(seed)
                b = fast.inject(seed)
                expected = RunOutcome(
                    engine=f"{tool_name}-reference-{mode}",
                    exit_code=a.result.exit_code,
                    trap=a.result.trap,
                    output=tuple(a.result.output),
                    trace=tuple(a.result.counts),
                )
                actual = RunOutcome(
                    engine=f"{tool_name}-fast-{mode}",
                    exit_code=b.result.exit_code,
                    trap=b.result.trap,
                    output=tuple(b.result.output),
                    trace=tuple(b.result.counts),
                )
                if (
                    expected.behaviour() != actual.behaviour()
                    or expected.trace != actual.trace
                    or a.result.steps != b.result.steps
                    or a.result.trap_pc != b.result.trap_pc
                    or abs(a.cycles - b.cycles) > 1e-9
                ):
                    return Divergence(
                        oracle="engine",
                        detail=(
                            f"fast engine diverged from the reference "
                            f"engine ({name}/{tool_name}/{mode}"
                            f"{'/' + fault_model if fault_model else ''}, "
                            f"steps {a.result.steps} vs {b.result.steps})"
                        ),
                        expected=expected,
                        actual=actual,
                        seed=seed,
                    )
    return None


def check_workload_scheduler_equivalence(
    name: str, n: int = 12, fault_model: str | None = None
) -> Divergence | None:
    """Trigger-ordered campaign vs index-ordered campaign on one workload.

    For every tool, runs the same ``n``-experiment campaign once per
    schedule and demands record-for-record equality on every
    :class:`~repro.campaign.results.ExperimentRecord` field except
    ``snapshot_hit`` (a fast-path provenance flag), with ``cycles`` held to
    float-summation tolerance — the campaign-level statement of the
    :class:`SchedulerOracle` property, fault injection included.
    """
    from repro.campaign.runner import make_tool, run_campaign
    from repro.fi.tools import TOOL_CLASSES

    spec = get_workload(name)
    for tool_name in ("LLFI", "REFINE", "PINFI"):
        if not _tool_supports_model(TOOL_CLASSES[tool_name], fault_model):
            continue
        by_index = run_campaign(
            make_tool(
                tool_name, spec.source, spec.name, snapshot_interval=0,
                fault_model=fault_model,
            ),
            n, keep_records=True,
        )
        by_trigger = run_campaign(
            make_tool(
                tool_name, spec.source, spec.name, snapshot_interval=0,
                schedule="trigger", fault_model=fault_model,
            ),
            n, keep_records=True, schedule="trigger",
        )
        for a, b in zip(by_index.records, by_trigger.records):
            identity = (
                ("seed", a.seed, b.seed),
                ("outcome", a.outcome, b.outcome),
                ("steps", a.steps, b.steps),
                ("trap", a.trap, b.trap),
                ("exit_code", a.exit_code, b.exit_code),
                ("fault", a.fault, b.fault),
                ("index", a.index, b.index),
            )
            mismatch = next(
                (field for field, x, y in identity if x != y), None
            )
            if mismatch is None and abs(a.cycles - b.cycles) > 1e-9 * max(
                1.0, abs(a.cycles)
            ):
                mismatch = "cycles"
            if mismatch is not None:
                return Divergence(
                    oracle="scheduler",
                    detail=(
                        f"trigger-ordered campaign diverged from the "
                        f"index-ordered one ({name}/{tool_name}"
                        f"{'/' + fault_model if fault_model else ''}, "
                        f"experiment {a.index}, field {mismatch!r})"
                    ),
                    seed=a.seed,
                )
        if by_index.counts != by_trigger.counts:
            return Divergence(
                oracle="scheduler",
                detail=(
                    f"trigger-ordered campaign outcome counts diverged "
                    f"({name}/{tool_name}"
                    f"{'/' + fault_model if fault_model else ''})"
                ),
            )
    return None


def check_workload_fault_model_equivalence(
    name: str,
    models: tuple[str, ...] | None = None,
    seeds: range = range(3),
    n: int = 8,
) -> Divergence | None:
    """Same seed + same fault model ⇒ identical outcomes everywhere.

    For each fault model (default: one of each registered kind), demands on
    one workload that (a) the fast and reference engines agree on every
    injection, and (b) a trigger-ordered campaign is record-for-record
    identical to an index-ordered one — i.e. the engine- and
    scheduler-equivalence properties hold under every model, not just the
    paper's single-bit default.  Tools that cannot host a model (LLFI has
    no instruction fetch to corrupt) are skipped for that model only.
    """
    if models is None:
        from repro.fi.models import MODEL_ORDER

        models = MODEL_ORDER
    for model in models:
        divergence = check_workload_engine_equivalence(
            name, seeds=seeds, fault_model=model
        )
        if divergence is None:
            divergence = check_workload_scheduler_equivalence(
                name, n=n, fault_model=model
            )
        if divergence is not None:
            divergence.oracle = "fault-model"
            divergence.detail = f"[{model}] {divergence.detail}"
            return divergence
    return None
