"""Reference IR interpreter: executes ``repro.ir`` modules directly.

This is the harness's independent semantics oracle — it shares *no* code
with instruction selection, register allocation, frame lowering or the
peephole pass, so a bug anywhere in the backend shows up as a divergence
between the interpreter and the compiled binary.

What it does share, deliberately:

* **libm** — intrinsic calls evaluate through
  :func:`repro.machine.intrinsics.call_math`, the same pure functions the
  machine's intrinsic handlers use, so ``sqrt``/``pow``/... cannot diverge;
* **scalar semantics** — i64 arithmetic wraps two's-complement, ``sdiv`` /
  ``srem`` truncate toward zero and trap on division by zero and
  ``INT64_MIN / -1`` (:class:`~repro.errors.DivideByZero`), shifts mask
  their count to 6 bits, ``fdiv`` by zero produces ±inf/NaN, and ``fptosi``
  saturates NaN/inf/out-of-range to ``INT64_MIN`` — all matching
  :mod:`repro.machine.cpu` instruction for instruction.

Memory is modelled as typed buffers (one per alloca/global), not a flat
byte array: loads and stores are bounds-checked per object, so an
out-of-bounds access traps as a segfault here even when the flat-memory
machine would silently hit a neighbouring object.  Differential oracles
therefore require in-bounds programs, which the generator guarantees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import (
    DivideByZero,
    ExecutionTimeout,
    MachineTrap,
    ReproError,
    SegmentationFault,
    StackOverflow,
)
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.types import ArrayType
from repro.ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    Value,
)
from repro.machine.intrinsics import BINARY_MATH, PURE_MATH, call_math, format_double
from repro.utils.bits import INT64_MIN, to_signed64


class InterpError(ReproError):
    """The interpreter met IR it cannot execute (not a program trap)."""


#: Default dynamic-instruction budget (well above any generated program).
DEFAULT_BUDGET = 10_000_000

#: Maximum call depth before the interpreter raises a stack-overflow trap
#: (the machine bounds the stack by memory size; the bound differs, but
#: generated programs stay far below both).
MAX_CALL_DEPTH = 256


@dataclass
class InterpResult:
    """Observable outcome of one interpreted execution.

    Mirrors the fields of :class:`repro.machine.cpu.ExecutionResult` that
    the oracles compare (``steps`` counts IR instructions, not machine
    instructions, so it is *not* comparable across engines).
    """

    exit_code: int = 0
    output: list[str] = field(default_factory=list)
    steps: int = 0
    trap: str | None = None

    @property
    def crashed(self) -> bool:
        return self.trap is not None or self.exit_code != 0


class _Buffer:
    """One memory object (alloca or global): a list of typed cells."""

    __slots__ = ("cells", "is_float")

    def __init__(self, count: int, is_float: bool, init=None) -> None:
        if init is None:
            self.cells = [0.0] * count if is_float else [0] * count
        else:
            self.cells = (
                [float(v) for v in init] if is_float else [int(v) for v in init]
            )
        self.is_float = is_float


class _Ptr:
    """A pointer value: a buffer plus an element offset."""

    __slots__ = ("buf", "off")

    def __init__(self, buf: _Buffer, off: int) -> None:
        self.buf = buf
        self.off = off


class Interpreter:
    """One execution context over an IR module."""

    def __init__(self, module: Module, budget: int = DEFAULT_BUDGET) -> None:
        self.module = module
        self.budget = budget
        self.steps = 0
        self.output: list[str] = []
        self.globals: dict[str, _Buffer] = {}
        for gv in module.globals.values():
            self.globals[gv.name] = _alloc_buffer(gv.value_type, gv.initializer)

    # -- entry point ---------------------------------------------------------

    def run(self, entry: str = "main") -> InterpResult:
        result = InterpResult()
        try:
            ret = self._call(self.module.get_function(entry), [], depth=0)
            result.exit_code = int(ret) if ret is not None else 0
        except MachineTrap as trap:
            result.trap = trap.kind
        result.output = self.output
        result.steps = self.steps
        return result

    # -- function execution ----------------------------------------------------

    def _call(self, fn: Function, args: list, depth: int):
        if depth >= MAX_CALL_DEPTH:
            raise StackOverflow(f"call depth {depth} in @{fn.name}")
        if fn.is_declaration:
            return self._intrinsic(fn, args)

        env: dict[int, object] = {}
        for formal, actual in zip(fn.args, args):
            env[id(formal)] = actual

        block = fn.entry
        prev = None
        while True:
            # Phi nodes read their inputs simultaneously on block entry.
            phis = []
            for instr in block.instructions:
                if not isinstance(instr, Phi):
                    break
                phis.append((instr, self._value(instr.incoming_for(prev), env)))
            for phi, value in phis:
                env[id(phi)] = value
                self._tick(phi)

            for instr in block.instructions[len(phis):]:
                self._tick(instr)
                if isinstance(instr, Ret):
                    if instr.value is None:
                        return None
                    return self._value(instr.value, env)
                if isinstance(instr, Branch):
                    prev, block = block, instr.target
                    break
                if isinstance(instr, CondBranch):
                    cond = self._value(instr.cond, env)
                    prev = block
                    block = instr.if_true if cond else instr.if_false
                    break
                env[id(instr)] = self._eval(instr, env, depth)
            else:
                raise InterpError(f"block {block.name} fell through")

    def _tick(self, instr) -> None:
        self.steps += 1
        if self.steps > self.budget:
            raise ExecutionTimeout(f"budget {self.budget} exhausted")

    # -- values ------------------------------------------------------------

    def _value(self, value: Value, env: dict):
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.value
        if isinstance(value, GlobalVariable):
            return _Ptr(self.globals[value.name], 0)
        if isinstance(value, (Argument,)) or id(value) in env:
            try:
                return env[id(value)]
            except KeyError:
                raise InterpError(f"read of undefined value {value.ref()}") from None
        raise InterpError(f"cannot evaluate operand {value!r}")

    # -- instruction evaluation ------------------------------------------------

    def _eval(self, instr, env: dict, depth: int):
        if isinstance(instr, BinaryOp):
            a = self._value(instr.lhs, env)
            b = self._value(instr.rhs, env)
            return _eval_binop(instr.opcode, a, b)
        if isinstance(instr, ICmp):
            a = self._value(instr.lhs, env)
            b = self._value(instr.rhs, env)
            return _eval_icmp(instr.pred, a, b)
        if isinstance(instr, FCmp):
            a = self._value(instr.lhs, env)
            b = self._value(instr.rhs, env)
            return _eval_fcmp(instr.pred, a, b)
        if isinstance(instr, Select):
            cond, if_true, if_false = instr.operands
            return (
                self._value(if_true, env)
                if self._value(cond, env)
                else self._value(if_false, env)
            )
        if isinstance(instr, Cast):
            return _eval_cast(instr.opcode, self._value(instr.operands[0], env))
        if isinstance(instr, Alloca):
            return _Ptr(_alloc_buffer(instr.allocated_type), 0)
        if isinstance(instr, Load):
            ptr = self._value(instr.ptr, env)
            return self._deref(ptr).cells[ptr.off]
        if isinstance(instr, Store):
            value = self._value(instr.value, env)
            ptr = self._value(instr.ptr, env)
            self._deref(ptr).cells[ptr.off] = value
            return None
        if isinstance(instr, GetElementPtr):
            ptr = self._value(instr.ptr, env)
            index = self._value(instr.index, env)
            if not isinstance(ptr, _Ptr):
                raise InterpError(f"gep through non-pointer {ptr!r}")
            base = 0 if _is_array_ptr(instr.ptr) else ptr.off
            return _Ptr(ptr.buf, base + index)
        if isinstance(instr, Call):
            args = [self._value(a, env) for a in instr.args]
            return self._call(instr.callee, args, depth + 1)
        raise InterpError(f"cannot interpret opcode {instr.opcode!r}")

    def _deref(self, ptr) -> _Buffer:
        if not isinstance(ptr, _Ptr):
            raise InterpError(f"memory access through non-pointer {ptr!r}")
        if not 0 <= ptr.off < len(ptr.buf.cells):
            raise SegmentationFault(
                f"access at element {ptr.off} of {len(ptr.buf.cells)}-element object"
            )
        return ptr.buf

    # -- intrinsics ------------------------------------------------------------

    def _intrinsic(self, fn: Function, args: list):
        name = fn.name
        if name == "print_int":
            self.output.append(str(int(args[0])))
            return None
        if name == "print_double":
            self.output.append(format_double(args[0]))
            return None
        if name in PURE_MATH:
            if name in BINARY_MATH:
                return call_math(name, args[0], args[1])
            return call_math(name, args[0])
        if name.startswith("__fi_inject"):
            # LLFI stubs with no armed fault are identity functions.
            return args[-1]
        raise InterpError(f"unknown intrinsic @{name}")


# -- scalar semantics (must match repro.machine.cpu) --------------------------


def _eval_binop(opcode: str, a, b):
    if opcode == "add":
        return to_signed64(a + b)
    if opcode == "sub":
        return to_signed64(a - b)
    if opcode == "mul":
        return to_signed64(a * b)
    if opcode == "sdiv":
        if b == 0 or (a == INT64_MIN and b == -1):
            return _div_trap(a, "sdiv", b)
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q
    if opcode == "srem":
        if b == 0 or (a == INT64_MIN and b == -1):
            return _div_trap(a, "srem", b)
        r = abs(a) % abs(b)
        return -r if a < 0 else r
    if opcode == "and":
        return a & b
    if opcode == "or":
        return a | b
    if opcode == "xor":
        return a ^ b
    if opcode == "shl":
        return to_signed64(a << (b & 63))
    if opcode == "ashr":
        return a >> (b & 63)
    if opcode == "fadd":
        return a + b
    if opcode == "fsub":
        return a - b
    if opcode == "fmul":
        return a * b
    if opcode == "fdiv":
        if b == 0.0:
            if a == 0.0 or a != a:
                return math.nan
            return math.copysign(math.inf, a) * math.copysign(1.0, b)
        return a / b
    raise InterpError(f"unknown binop {opcode!r}")


def _div_trap(a, op, b):
    raise DivideByZero(f"{a} {op} {b}")


_ICMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}


def _eval_icmp(pred: str, a, b) -> int:
    if isinstance(a, _Ptr) or isinstance(b, _Ptr):
        a = _ptr_key(a)
        b = _ptr_key(b)
    return 1 if _ICMP[pred](a, b) else 0


def _ptr_key(p):
    return (id(p.buf), p.off) if isinstance(p, _Ptr) else p


def _eval_fcmp(pred: str, a: float, b: float) -> int:
    if math.isnan(a) or math.isnan(b):
        return 0  # ordered predicates are false on NaN
    if pred == "oeq":
        return 1 if a == b else 0
    if pred == "one":
        return 1 if a != b else 0
    if pred == "olt":
        return 1 if a < b else 0
    if pred == "ole":
        return 1 if a <= b else 0
    if pred == "ogt":
        return 1 if a > b else 0
    if pred == "oge":
        return 1 if a >= b else 0
    raise InterpError(f"unknown fcmp predicate {pred!r}")


def _eval_cast(opcode: str, value):
    if opcode == "sitofp":
        return float(value)
    if opcode == "fptosi":
        # cvttsd2si semantics: NaN/inf/out-of-range saturate to INT64_MIN.
        if value != value or value in (math.inf, -math.inf):
            return INT64_MIN
        truncated = math.trunc(value)
        if not INT64_MIN <= truncated < -INT64_MIN:
            return INT64_MIN
        return truncated
    if opcode == "zext":
        return int(value)
    raise InterpError(f"unknown cast {opcode!r}")


def _alloc_buffer(type_, init=None) -> _Buffer:
    if isinstance(type_, ArrayType):
        return _Buffer(type_.count, type_.element.is_float(), init)
    return _Buffer(1, type_.is_float(), None if init is None else [init])


def _is_array_ptr(ptr_value: Value) -> bool:
    pointee = ptr_value.type.pointee  # type: ignore[attr-defined]
    return isinstance(pointee, ArrayType)


def interpret(
    module: Module, entry: str = "main", budget: int = DEFAULT_BUDGET
) -> InterpResult:
    """Execute ``module`` from ``entry`` and return the observable outcome."""
    return Interpreter(module, budget).run(entry)
