"""Delta-debugging reducer: shrink a diverging IR module to a minimal repro.

Works on the textual IR (the fuzzer's artifact format) but edits structurally:
every candidate re-parses the current text, applies one simplification,
verifies the result, and keeps it only if the caller's predicate still holds
(i.e. the bug still reproduces).

Two phases, because each predicate evaluation costs a full compile+run:

* **coarse** — classic ddmin over the side-effecting instructions (stores
  and void calls): delete exponentially shrinking chunks of them at once.
  Removing one ``print`` makes its whole expression tree dead, and the
  post-edit cleanup sweeps cascading dead code, so a single predicate call
  can eliminate dozens of instructions.
* **fine** — greedy single edits to fixpoint: delete an uncalled function,
  fold a conditional branch to one successor (killing a region), delete an
  instruction (value-producing ones by first rewriting their uses to a
  same-typed operand or a constant), replace a phi with one incoming value,
  drop an unused global.

After every edit, unreachable blocks are removed, phi edges repaired, and
dead code swept, so each candidate re-verifies.  The result is 1-minimal
with respect to the fine edit set, which in practice shrinks a
~300-instruction fuzz module to a handful of instructions.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.ir import Module, parse_module, format_module, verify_module
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, Call, CondBranch, Instruction, Phi
from repro.ir.values import ConstantFloat, ConstantInt, Value

#: Safety valve: maximum number of predicate evaluations per reduction.
DEFAULT_MAX_CHECKS = 3000


def count_instructions(module_or_text: Module | str) -> int:
    """Total instruction count over all defined functions."""
    module = (
        parse_module(module_or_text)
        if isinstance(module_or_text, str)
        else module_or_text
    )
    return sum(
        len(block.instructions)
        for fn in module.defined_functions()
        for block in fn.blocks
    )


def reduce_ir(
    text: str,
    predicate: Callable[[str], bool],
    max_checks: int = DEFAULT_MAX_CHECKS,
) -> str:
    """Shrink ``text`` while ``predicate`` keeps returning True on it.

    ``predicate`` receives candidate IR text and must return True when the
    behaviour being chased (a divergence, a crash) still reproduces.  The
    input itself must satisfy the predicate.
    """
    if not predicate(text):
        raise ReproError("reduce_ir: predicate does not hold on the input")
    budget = _Budget(max_checks)
    current = _coarse_phase(text, predicate, budget)
    return _fine_phase(current, predicate, budget)


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        """Consume one predicate evaluation; False when exhausted."""
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _try_candidate(
    current: str,
    mutate: Callable[[Module], None],
    predicate: Callable[[str], bool],
    budget: _Budget,
) -> str | None:
    """Apply ``mutate`` to a fresh parse; return the new text if it sticks."""
    module = parse_module(current)
    try:
        mutate(module)
        _cleanup_module(module)
        verify_module(module)
        candidate = format_module(module)
    except ReproError:
        return None
    if candidate == current or not budget.spend():
        return None
    return candidate if predicate(candidate) else None


def _side_effect_positions(module: Module) -> int:
    """Number of non-terminator side-effecting instructions, in walk order."""
    return sum(
        1
        for fn in module.defined_functions()
        for block in fn.blocks
        for instr in block.instructions
        if instr.has_side_effects and not instr.is_terminator
    )


def _delete_side_effects(module: Module, lo: int, hi: int) -> None:
    """Delete the side-effecting instructions at walk positions [lo, hi)."""
    position = 0
    for fn in module.defined_functions():
        for block in fn.blocks:
            for instr in list(block.instructions):
                if instr.is_terminator or not instr.has_side_effects:
                    continue
                if lo <= position < hi:
                    if instr.num_uses:
                        zero: Value = (
                            ConstantFloat(0.0)
                            if instr.type.is_float()
                            else ConstantInt(0, instr.type)
                        )
                        instr.replace_all_uses_with(zero)
                    instr.erase()
                position += 1


def _coarse_phase(
    current: str, predicate: Callable[[str], bool], budget: _Budget
) -> str:
    """ddmin over side-effecting instructions, halving chunk sizes."""
    total = _side_effect_positions(parse_module(current))
    chunk = max(total // 2, 1)
    while chunk >= 1:
        offset = 0
        while True:
            total = _side_effect_positions(parse_module(current))
            if offset >= total:
                break
            lo, hi = offset, min(offset + chunk, total)
            candidate = _try_candidate(
                current,
                lambda m: _delete_side_effects(m, lo, hi),
                predicate,
                budget,
            )
            if candidate is not None:
                current = candidate
                # positions shifted down; retry the same offset
            else:
                offset += chunk
        if chunk == 1:
            break
        chunk //= 2
    return current


def _fine_phase(
    current: str, predicate: Callable[[str], bool], budget: _Budget
) -> str:
    changed = True
    while changed:
        changed = False
        index = 0
        while True:
            module = parse_module(current)
            edits = _enumerate_edits(module)
            if index >= len(edits):
                break
            try:
                edits[index]()
                _cleanup_module(module)
                verify_module(module)
                candidate = format_module(module)
            except ReproError:
                index += 1
                continue
            if candidate == current or not budget.spend():
                index += 1
                continue
            if predicate(candidate):
                current = candidate
                changed = True
                # stay at the same index: the edit list shifted under us
            else:
                index += 1
    return current


# -- edit enumeration ---------------------------------------------------------


def _enumerate_edits(module: Module) -> list[Callable[[], None]]:
    edits: list[Callable[[], None]] = []
    called = _called_functions(module)

    for fn in module.defined_functions():
        if fn.name != "main" and fn.name not in called:
            edits.append(_make_drop_function(module, fn))

    for fn in module.defined_functions():
        for block in fn.blocks:
            term = block.terminator
            if isinstance(term, CondBranch):
                for target in (term.if_true, term.if_false):
                    edits.append(_make_fold_branch(block, term, target))

    # Later instructions first: their deaths free up earlier ones.
    for fn in module.defined_functions():
        for block in reversed(fn.blocks):
            for instr in reversed(block.instructions):
                if instr.is_terminator:
                    continue
                if isinstance(instr, Phi):
                    for value in list(instr.operands):
                        edits.append(_make_replace_uses(instr, value))
                    continue
                edits.extend(_instruction_edits(instr))

    for name, gv in list(module.globals.items()):
        if not gv.users:
            edits.append(_make_drop_global(module, name))

    return edits


def _called_functions(module: Module) -> set[str]:
    names = set()
    for fn in module.defined_functions():
        for instr in fn.instructions():
            if isinstance(instr, Call):
                names.add(instr.callee.name)
    return names


def _instruction_edits(instr: Instruction) -> list[Callable[[], None]]:
    edits: list[Callable[[], None]] = []
    if instr.num_uses == 0:
        edits.append(_make_delete(instr))
        return edits
    # Try rewriting users to an operand of the same type (preserves more
    # behaviour, shrinks expression trees bottom-up)...
    for operand in instr.operands:
        if operand.type == instr.type:
            edits.append(_make_replace_uses(instr, operand))
    # ... then to a plain constant (coarser, always applicable to scalars).
    if instr.type.is_integer():
        bits_zero = ConstantInt(0, instr.type)
        edits.append(_make_replace_uses(instr, bits_zero))
    elif instr.type.is_float():
        edits.append(_make_replace_uses(instr, ConstantFloat(0.0)))
    return edits


def _make_drop_function(module: Module, fn: Function) -> Callable[[], None]:
    def apply() -> None:
        for instr in list(fn.instructions()):
            instr.drop_operands()
        del module.functions[fn.name]

    return apply


def _make_fold_branch(
    block: BasicBlock, term: CondBranch, target: BasicBlock
) -> Callable[[], None]:
    def apply() -> None:
        block.remove(term)
        term.drop_operands()
        block.append(Branch(target))

    return apply


def _make_delete(instr: Instruction) -> Callable[[], None]:
    def apply() -> None:
        instr.erase()

    return apply


def _make_replace_uses(instr: Instruction, value: Value) -> Callable[[], None]:
    def apply() -> None:
        instr.replace_all_uses_with(value)
        instr.erase()

    return apply


def _make_drop_global(module: Module, name: str) -> Callable[[], None]:
    def apply() -> None:
        del module.globals[name]

    return apply


# -- post-edit cleanup --------------------------------------------------------


def _cleanup_module(module: Module) -> None:
    for fn in module.defined_functions():
        _remove_unreachable_blocks(fn)
        _repair_phis(fn)
        _sweep_dead(fn)
        if _merge_forwarding_blocks(fn):
            # Retargeting can strand blocks and single out phi edges.
            _remove_unreachable_blocks(fn)
            _repair_phis(fn)


def _merge_forwarding_blocks(fn: Function) -> bool:
    """Route control flow around blocks that only forward to another block.

    The instruction edits leave chains of ``bb: br label %next`` behind;
    without this the reduced repro keeps an arbitrarily long branch
    skeleton.  Phi-bearing successors are skipped — retargeting would need
    per-predecessor edge bookkeeping for no minimality gain.
    """
    changed = False
    for block in list(fn.blocks):
        if block is fn.entry or len(block.instructions) != 1:
            continue
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        target = term.target
        if target is block or target.phis():
            continue
        for pred in block.predecessors():
            pred_term = pred.terminator
            if pred_term is not None:
                pred_term.replace_successor(block, target)
                changed = True
    return changed


def _sweep_dead(fn: Function) -> None:
    """Cascading removal of unused, side-effect-free instructions.

    This is what makes one deleted ``print`` worth a whole expression tree:
    the generator builds trees bottom-up, so killing the root strands every
    interior node.
    """
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for instr in reversed(list(block.instructions)):
                if instr.has_side_effects or isinstance(instr, Phi):
                    continue
                if instr.num_uses == 0:
                    instr.erase()
                    changed = True


def _remove_unreachable_blocks(fn: Function) -> None:
    reachable: set[int] = set()
    work = [fn.entry]
    while work:
        block = work.pop()
        if id(block) in reachable:
            continue
        reachable.add(id(block))
        work.extend(block.successors())
    dead = [b for b in fn.blocks if id(b) not in reachable]
    if not dead:
        return
    # Values defined in unreachable blocks can only be used by other
    # unreachable code, so the whole group can be dropped wholesale once
    # operand uses are released.
    for block in dead:
        for instr in block.instructions:
            instr.drop_operands()
    dead_ids = {id(b) for b in dead}
    for block in fn.blocks:
        if id(block) in dead_ids:
            continue
        for phi in block.phis():
            for pred in list(phi.incoming_blocks):
                if id(pred) in dead_ids:
                    phi.remove_incoming(pred)
    for block in dead:
        fn.remove_block(block)


def _repair_phis(fn: Function) -> None:
    for block in fn.blocks:
        preds = block.predecessors()
        pred_ids = {id(p) for p in preds}
        for phi in block.phis():
            for incoming in list(phi.incoming_blocks):
                if id(incoming) not in pred_ids:
                    phi.remove_incoming(incoming)
            if len(phi.operands) == 1:
                phi.replace_all_uses_with(phi.operands[0])
                phi.drop_operands()
                block.remove(phi)
            elif not phi.operands:
                # No predecessors left at all: block is about to die or the
                # phi is meaningless; replace with a typed zero.
                zero: Value = (
                    ConstantFloat(0.0)
                    if phi.type.is_float()
                    else ConstantInt(0, phi.type)
                )
                phi.replace_all_uses_with(zero)
                block.remove(phi)
