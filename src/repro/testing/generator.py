"""Seeded random generator of well-typed IR programs.

Programs are built directly on the IR API (not via MiniC) so the fuzzer can
reach shapes the frontend never emits: phi-carried loop accumulators, deep
``select`` chains, mixed int/float expression trees, helper calls, global
arrays.  Every module verifies, terminates, and is *trap-free by
construction*:

* divisors are forced odd-and-small (``(x & 7) | 1``) so ``sdiv``/``srem``
  can neither divide by zero nor overflow on ``INT64_MIN / -1``;
* shift counts are masked to 6 bits;
* array indices are masked to ``len - 1`` (lengths are powers of two), so
  every access is in bounds — required because the reference interpreter
  bounds-checks per object while the machine has flat memory;
* loops have constant trip counts, helpers never recurse, and ``main``
  always returns 0.

Crash behaviour is therefore tested by the interpreter's own unit tests,
while the differential oracles compare rich printed output.  Determinism:
the only entropy source is :class:`repro.utils.rng.SplitMix64`, so one seed
is one program, forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import (
    ArrayType,
    F64,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    VOID,
)
from repro.ir.function import Function
from repro.ir.values import ConstantFloat, ConstantInt, Value
from repro.machine.intrinsics import BINARY_MATH, PURE_MATH
from repro.utils.bits import to_signed64
from repro.utils.rng import SplitMix64


@dataclass
class GenConfig:
    """Size/shape knobs for one generated program."""

    #: approximate instruction budget for @main's statement section
    max_insts: int = 120
    #: helper functions defined before @main (0 disables calls)
    helpers: int = 2
    num_int_vars: int = 3
    num_float_vars: int = 2
    #: array length; must be a power of two (indices are masked to len-1)
    arr_len: int = 8
    max_expr_depth: int = 3
    #: nesting depth of if/loop statements
    max_stmt_depth: int = 2
    #: loop trip counts are drawn from [1, max_trip]
    max_trip: int = 6


_FLOAT_LEAVES = (0.0, 1.0, -1.0, 0.5, 2.0, -0.25, 3.141592653589793, 10.0)

_INT_BINOPS = ("add", "sub", "mul", "and", "or", "xor", "sdiv", "srem", "shl", "ashr")
_FLOAT_BINOPS = ("fadd", "fsub", "fmul", "fdiv")
_ICMP_PREDS = ("eq", "ne", "slt", "sle", "sgt", "sge")
_FCMP_PREDS = ("oeq", "one", "olt", "ole", "ogt", "oge")


class _Scope:
    """SSA values (loop phis, arguments) usable as expression leaves."""

    def __init__(self) -> None:
        self.ints: list[Value] = []
        self.floats: list[Value] = []

    def snapshot(self) -> tuple[int, int]:
        return len(self.ints), len(self.floats)

    def restore(self, mark: tuple[int, int]) -> None:
        del self.ints[mark[0]:]
        del self.floats[mark[1]:]


class _Gen:
    def __init__(self, seed: int, config: GenConfig) -> None:
        self.rng = SplitMix64(seed)
        self.cfg = config
        self.module = Module(f"fuzz_{seed & 0xFFFFFFFFFFFFFFFF:016x}")
        self.b = IRBuilder()
        self.scope = _Scope()
        self.helpers: list[Function] = []
        self._declare_intrinsics()
        self._make_globals()

    # -- randomness helpers ----------------------------------------------------

    def pick(self, seq):
        return seq[self.rng.randrange(len(seq))]

    def chance(self, num: int, den: int) -> bool:
        return self.rng.randrange(den) < num

    # -- module scaffolding ----------------------------------------------------

    def _declare_intrinsics(self) -> None:
        m = self.module
        self.print_int = m.declare_function("print_int", FunctionType(VOID, [I64]))
        self.print_double = m.declare_function(
            "print_double", FunctionType(VOID, [F64])
        )
        self.math_fns: list[Function] = []
        for name in PURE_MATH:
            arity = 2 if name in BINARY_MATH else 1
            self.math_fns.append(
                m.declare_function(name, FunctionType(F64, [F64] * arity))
            )

    def _make_globals(self) -> None:
        n = self.cfg.arr_len
        self.g_int = self.module.add_global(
            "gi", I64, to_signed64(self.rng.next_u64() >> 40)
        )
        self.g_flt = self.module.add_global("gf", F64, self.pick(_FLOAT_LEAVES))
        self.g_iarr = self.module.add_global(
            "giarr",
            ArrayType(I64, n),
            [self.rng.randrange(100) - 50 for _ in range(n)],
        )
        self.g_farr = self.module.add_global(
            "gfarr",
            ArrayType(F64, n),
            [self.pick(_FLOAT_LEAVES) for _ in range(n)],
        )

    # -- expressions -----------------------------------------------------------

    def int_const(self) -> Value:
        r = self.rng.randrange(8)
        if r < 5:
            value = self.rng.randrange(17) - 8
        elif r < 7:
            value = self.rng.randrange(1 << 16) - (1 << 15)
        else:
            value = to_signed64(self.rng.next_u64())
        return ConstantInt(value)

    def int_leaf(self) -> Value:
        choices = ["const", "global", "garr"]
        if self.int_ptrs:
            choices += ["var", "var"]
        if self.scope.ints:
            choices += ["ssa", "ssa"]
        kind = self.pick(choices)
        if kind == "const":
            return self.int_const()
        if kind == "global":
            return self.b.load(self.g_int)
        if kind == "garr":
            return self._load_indexed(self.g_iarr, self.int_const())
        if kind == "var":
            return self.b.load(self.pick(self.int_ptrs))
        return self.pick(self.scope.ints)

    def float_leaf(self) -> Value:
        choices = ["const", "global", "garr"]
        if self.float_ptrs:
            choices += ["var", "var"]
        if self.scope.floats:
            choices += ["ssa", "ssa"]
        kind = self.pick(choices)
        if kind == "const":
            return ConstantFloat(self.pick(_FLOAT_LEAVES))
        if kind == "global":
            return self.b.load(self.g_flt)
        if kind == "garr":
            return self._load_indexed(self.g_farr, self.int_const())
        if kind == "var":
            return self.b.load(self.pick(self.float_ptrs))
        return self.pick(self.scope.floats)

    def _load_indexed(self, arr: Value, index: Value) -> Value:
        masked = self.b.binop("and", index, ConstantInt(self.cfg.arr_len - 1))
        return self.b.load(self.b.gep(arr, masked))

    def _safe_divisor(self, depth: int) -> Value:
        """``(x & 7) | 1`` — always in {1,3,5,7}: no trap, no overflow."""
        raw = self.int_expr(depth - 1)
        return self.b.binop("or", self.b.binop("and", raw, ConstantInt(7)), ConstantInt(1))

    def int_expr(self, depth: int) -> Value:
        if depth <= 0 or self.chance(1, 4):
            return self.int_leaf()
        kind = self.rng.randrange(10)
        if kind < 6:
            op = self.pick(_INT_BINOPS)
            lhs = self.int_expr(depth - 1)
            if op in ("sdiv", "srem"):
                rhs: Value = self._safe_divisor(depth)
            elif op in ("shl", "ashr"):
                rhs = self.b.binop("and", self.int_expr(depth - 1), ConstantInt(63))
            else:
                rhs = self.int_expr(depth - 1)
            return self.b.binop(op, lhs, rhs)
        if kind < 7:
            return self.b.select(
                self.bool_expr(depth - 1),
                self.int_expr(depth - 1),
                self.int_expr(depth - 1),
            )
        if kind < 8:
            return self.b.cast("zext", self.bool_expr(depth - 1))
        if kind < 9:
            return self.b.cast("fptosi", self.float_expr(depth - 1))
        helper = self._pick_helper(I64)
        if helper is not None:
            return self._call_helper(helper, depth)
        return self.int_leaf()

    def float_expr(self, depth: int) -> Value:
        if depth <= 0 or self.chance(1, 4):
            return self.float_leaf()
        kind = self.rng.randrange(10)
        if kind < 5:
            return self.b.binop(
                self.pick(_FLOAT_BINOPS),
                self.float_expr(depth - 1),
                self.float_expr(depth - 1),
            )
        if kind < 7:
            fn = self.pick(self.math_fns)
            args = [self.float_expr(depth - 1) for _ in fn.type.params]
            return self.b.call(fn, args)
        if kind < 8:
            return self.b.cast("sitofp", self.int_expr(depth - 1))
        if kind < 9:
            return self.b.select(
                self.bool_expr(depth - 1),
                self.float_expr(depth - 1),
                self.float_expr(depth - 1),
            )
        helper = self._pick_helper(F64)
        if helper is not None:
            return self._call_helper(helper, depth)
        return self.float_leaf()

    def bool_expr(self, depth: int) -> Value:
        if self.chance(1, 3):
            return self.b.fcmp(
                self.pick(_FCMP_PREDS),
                self.float_expr(depth - 1),
                self.float_expr(depth - 1),
            )
        return self.b.icmp(
            self.pick(_ICMP_PREDS), self.int_expr(depth - 1), self.int_expr(depth - 1)
        )

    # -- helper calls ----------------------------------------------------------

    def _pick_helper(self, ret_type) -> Function | None:
        matches = [f for f in self.helpers if f.return_type == ret_type]
        return self.pick(matches) if matches else None

    def _call_helper(self, helper: Function, depth: int) -> Value:
        args = [
            self.int_expr(depth - 1) if p == I64 else self.float_expr(depth - 1)
            for p in helper.type.params
        ]
        return self.b.call(helper, args)

    # -- statements ------------------------------------------------------------

    def statement(self, depth: int) -> None:
        kind = self.rng.randrange(12)
        d = self.cfg.max_expr_depth
        if kind < 3 and self.int_ptrs:
            self.b.store(self.int_expr(d), self.pick(self.int_ptrs))
        elif kind < 5 and self.float_ptrs:
            self.b.store(self.float_expr(d), self.pick(self.float_ptrs))
        elif kind < 6:
            arr = self.pick([self.g_iarr, self.g_farr])
            masked = self.b.binop(
                "and", self.int_expr(d - 1), ConstantInt(self.cfg.arr_len - 1)
            )
            ptr = self.b.gep(arr, masked)
            value = self.int_expr(d) if arr is self.g_iarr else self.float_expr(d)
            self.b.store(value, ptr)
        elif kind < 7:
            self.b.call(self.print_int, [self.int_expr(d)])
        elif kind < 8:
            self.b.call(self.print_double, [self.float_expr(d)])
        elif kind < 10 and depth > 0:
            self._if_statement(depth)
        elif depth > 0:
            self._loop_statement(depth)
        else:
            self.b.store(self.int_expr(d), self.pick(self.int_ptrs))

    def _if_statement(self, depth: int) -> None:
        fn = self.b.function
        cond = self.bool_expr(self.cfg.max_expr_depth - 1)
        then_bb = fn.add_block()
        else_bb = fn.add_block() if self.chance(1, 2) else None
        join_bb = fn.add_block()
        # NB: empty BasicBlocks are falsy, so `else_bb or join_bb` would
        # silently orphan a just-created else block.
        self.b.cond_br(cond, then_bb, join_bb if else_bb is None else else_bb)
        self.b.set_block(then_bb)
        for _ in range(1 + self.rng.randrange(2)):
            self.statement(depth - 1)
        self.b.br(join_bb)
        if else_bb is not None:
            self.b.set_block(else_bb)
            for _ in range(1 + self.rng.randrange(2)):
                self.statement(depth - 1)
            self.b.br(join_bb)
        self.b.set_block(join_bb)

    def _loop_statement(self, depth: int) -> None:
        """A counted loop with a phi induction variable and phi accumulator.

        ::

            pre:    br header
            header: i   = phi [0, pre], [i.next, latch]
                    acc = phi [init, pre], [acc.next, latch]
                    condbr (icmp slt i, trip), body, exit
            body:   <statements>        ; may contain nested ifs/loops
                    br latch
            latch:  acc.next = acc <op> <expr>
                    i.next   = add i, 1
                    br header
            exit:   sink(acc)
        """
        fn = self.b.function
        trip = 1 + self.rng.randrange(self.cfg.max_trip)
        init = self.float_leaf()
        header = fn.add_block()
        body = fn.add_block()
        latch = fn.add_block()
        exit_bb = fn.add_block()
        pre = self.b.block
        self.b.br(header)

        self.b.set_block(header)
        ivar = self.b.phi(I64, "i")
        acc = self.b.phi(F64, "acc")
        cond = self.b.icmp("slt", ivar, ConstantInt(trip))
        self.b.cond_br(cond, body, exit_bb)

        mark = self.scope.snapshot()
        self.scope.ints.append(ivar)
        self.scope.floats.append(acc)

        self.b.set_block(body)
        for _ in range(1 + self.rng.randrange(2)):
            self.statement(depth - 1)
        self.b.br(latch)

        self.b.set_block(latch)
        step = self.float_expr(self.cfg.max_expr_depth - 1)
        acc_next = self.b.binop(self.pick(("fadd", "fsub", "fmul")), acc, step)
        i_next = self.b.binop("add", ivar, ConstantInt(1))
        self.b.br(header)

        ivar.add_incoming(ConstantInt(0), pre)
        ivar.add_incoming(i_next, latch)
        acc.add_incoming(init, pre)
        acc.add_incoming(acc_next, latch)

        self.scope.restore(mark)
        self.b.set_block(exit_bb)
        # The accumulator's final value (defined in header, which dominates
        # exit) feeds either output or a variable — loops are never dead.
        if self.chance(1, 2) or not self.float_ptrs:
            self.b.call(self.print_double, [acc])
        else:
            self.b.store(acc, self.pick(self.float_ptrs))

    # -- functions ------------------------------------------------------------

    def _gen_helper(self, index: int) -> Function:
        n_int = 1 + self.rng.randrange(2)
        n_flt = self.rng.randrange(2)
        params = [I64] * n_int + [F64] * n_flt
        ret = self.pick((I64, F64))
        fn = self.module.add_function(f"helper{index}", FunctionType(ret, params))
        self.b.set_block(fn.add_block("entry"))
        self.int_ptrs: list[Value] = []
        self.float_ptrs: list[Value] = []
        mark = self.scope.snapshot()
        for arg in fn.args:
            (self.scope.ints if arg.type == I64 else self.scope.floats).append(arg)
        if ret == I64:
            self.b.ret(self.int_expr(self.cfg.max_expr_depth))
        else:
            self.b.ret(self.float_expr(self.cfg.max_expr_depth))
        self.scope.restore(mark)
        return fn

    def _gen_main(self) -> None:
        cfg = self.cfg
        fn = self.module.add_function("main", FunctionType(I64, []))
        self.b.set_block(fn.add_block("entry"))
        self.int_ptrs = [
            self.b.alloca(I64, f"iv{i}") for i in range(cfg.num_int_vars)
        ]
        self.float_ptrs = [
            self.b.alloca(F64, f"fv{i}") for i in range(cfg.num_float_vars)
        ]
        for ptr in self.int_ptrs:
            self.b.store(self.int_const(), ptr)
        for ptr in self.float_ptrs:
            self.b.store(ConstantFloat(self.pick(_FLOAT_LEAVES)), ptr)

        while sum(len(b.instructions) for b in fn.blocks) < cfg.max_insts:
            self.statement(cfg.max_stmt_depth)

        # Epilogue: print every variable and both global arrays so silent
        # corruption anywhere becomes an output difference.
        for ptr in self.int_ptrs:
            self.b.call(self.print_int, [self.b.load(ptr)])
        for ptr in self.float_ptrs:
            self.b.call(self.print_double, [self.b.load(ptr)])
        self.b.call(self.print_int, [self.b.load(self.g_int)])
        self.b.call(self.print_double, [self.b.load(self.g_flt)])
        for i in range(cfg.arr_len):
            self.b.call(
                self.print_int, [self.b.load(self.b.gep(self.g_iarr, ConstantInt(i)))]
            )
            self.b.call(
                self.print_double,
                [self.b.load(self.b.gep(self.g_farr, ConstantInt(i)))],
            )
        self.b.ret(ConstantInt(0))

    def generate(self) -> Module:
        for i in range(self.cfg.helpers):
            self.helpers.append(self._gen_helper(i))
        self._gen_main()
        return self.module


def generate_module(seed: int, config: GenConfig | None = None) -> Module:
    """Generate a deterministic, verifying, trap-free IR module from a seed."""
    return _Gen(seed, config or GenConfig()).generate()
