"""Differential-testing harness for the compiler/FI stack.

REFINE's trustworthiness argument rests on the compiler pipeline and on the
claim that backend instrumentation does not perturb code generation
(paper Section 3).  This package checks both against independent semantics:

* :mod:`repro.testing.interp` — a reference interpreter that executes IR
  modules directly, with trap semantics matching :mod:`repro.machine.cpu`
  but sharing **no** backend code;
* :mod:`repro.testing.generator` — a seeded random generator of well-typed
  IR programs (loops, branches, memory traffic, int/float arithmetic);
* :mod:`repro.testing.oracles` — differential oracles: interpreter vs
  compiled binary, O0 vs the full pass pipeline, and the zero-interference
  oracle (instrumented-but-no-fault must be bit-identical to golden);
* :mod:`repro.testing.reduce` — a delta-debugging reducer that shrinks any
  diverging module to a minimal repro;
* :mod:`repro.testing.fuzz` — the campaign driver behind ``refine-fuzz``.
"""

from repro.testing.fuzz import FuzzFailure, FuzzStats, run_fuzz
from repro.testing.generator import GenConfig, generate_module
from repro.testing.interp import InterpResult, interpret
from repro.testing.oracles import (
    ORACLES,
    Divergence,
    EngineOracle,
    InterpOracle,
    Oracle,
    PipelineOracle,
    RunOutcome,
    SchedulerOracle,
    ZeroInterferenceOracle,
    check_workload_engine_equivalence,
    check_workload_fault_model_equivalence,
    check_workload_scheduler_equivalence,
    check_workload_zero_interference,
    compiled_outcome,
    interp_outcome,
)
from repro.testing.reduce import count_instructions, reduce_ir

__all__ = [
    "FuzzFailure",
    "FuzzStats",
    "run_fuzz",
    "GenConfig",
    "generate_module",
    "InterpResult",
    "interpret",
    "ORACLES",
    "Divergence",
    "Oracle",
    "EngineOracle",
    "InterpOracle",
    "PipelineOracle",
    "SchedulerOracle",
    "ZeroInterferenceOracle",
    "check_workload_engine_equivalence",
    "check_workload_fault_model_equivalence",
    "check_workload_scheduler_equivalence",
    "check_workload_zero_interference",
    "compiled_outcome",
    "interp_outcome",
    "RunOutcome",
    "count_instructions",
    "reduce_ir",
]
