"""Differential fuzzing campaign driver (the engine behind ``refine-fuzz``).

Programs are derived deterministically: program ``i`` of a campaign with
base seed ``S`` is generated from ``derive_seed(S, "refine-fuzz", i)``, so
any failure is replayable forever with::

    refine-fuzz --seed S --start i --count 1 --oracle <name>

On a failure the driver writes the offending module, a delta-debugged
minimal repro, and the divergence report into the artifacts directory, and
records that one-line repro command.  A compiler crash (any
:class:`~repro.errors.ReproError` escaping an oracle) is treated as a
failure of that oracle, not as a fuzzer error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import ReproError
from repro.ir import format_module, parse_module, verify_module
from repro.testing.generator import GenConfig, generate_module
from repro.testing.oracles import ORACLES, Divergence, Oracle
from repro.testing.reduce import count_instructions, reduce_ir
from repro.utils.rng import derive_seed

#: Default location for failure artifacts (gitignored).
DEFAULT_ARTIFACTS_DIR = "fuzz-artifacts"


@dataclass
class FuzzFailure:
    """One diverging (or crashing) program, with its replay coordinates."""

    index: int
    seed: int
    oracle: str
    detail: str
    repro: str
    module_path: str | None = None
    reduced_path: str | None = None
    reduced_instructions: int | None = None


@dataclass
class FuzzStats:
    """Aggregate result of one fuzzing campaign."""

    base_seed: int
    programs: int = 0
    checks: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"fuzz: {self.programs} programs x {self.checks // max(self.programs, 1)}"
            f" oracle(s), seed {self.base_seed}: {status}"
            f" ({self.elapsed:.1f}s)"
        )


def _oracle_verdict(oracle: Oracle, text: str) -> Divergence | None:
    """Run one oracle on IR text; compiler crashes count as divergences."""
    try:
        module = parse_module(text)
        return oracle.check(module)
    except ReproError as exc:
        return Divergence(
            oracle=oracle.name,
            detail=f"compiler crashed: {type(exc).__name__}: {exc}",
        )


def run_fuzz(
    base_seed: int = 1,
    count: int = 100,
    start: int = 0,
    oracles: Sequence[str] = ("interp", "pipeline", "zero"),
    config: GenConfig | None = None,
    artifacts_dir: str | Path = DEFAULT_ARTIFACTS_DIR,
    reduce: bool = True,
    progress: Callable[[int, "FuzzStats"], None] | None = None,
) -> FuzzStats:
    """Fuzz ``count`` programs through the named oracles.

    Returns a :class:`FuzzStats`; campaign passes iff ``stats.ok``.
    """
    selected = []
    for name in oracles:
        if name not in ORACLES:
            raise ReproError(
                f"unknown oracle {name!r} (have: {', '.join(sorted(ORACLES))})"
            )
        selected.append(ORACLES[name])

    stats = FuzzStats(base_seed=base_seed)
    began = time.monotonic()
    for i in range(start, start + count):
        seed = derive_seed(base_seed, "refine-fuzz", i)
        module = generate_module(seed, config)
        verify_module(module)
        text = format_module(module)
        stats.programs += 1
        for oracle in selected:
            stats.checks += 1
            divergence = _oracle_verdict(oracle, text)
            if divergence is None:
                continue
            failure = _record_failure(
                base_seed, i, seed, oracle, divergence, text,
                Path(artifacts_dir), reduce, config,
            )
            stats.failures.append(failure)
        if progress is not None:
            progress(i, stats)
    stats.elapsed = time.monotonic() - began
    return stats


def _record_failure(
    base_seed: int,
    index: int,
    seed: int,
    oracle: Oracle,
    divergence: Divergence,
    text: str,
    artifacts_dir: Path,
    reduce: bool,
    config: GenConfig | None,
) -> FuzzFailure:
    repro = f"refine-fuzz --seed {base_seed} --start {index} --count 1 --oracle {oracle.name}"
    if config is not None and config.max_insts != GenConfig.max_insts:
        repro += f" --max-insts {config.max_insts}"
    failure = FuzzFailure(
        index=index,
        seed=seed,
        oracle=oracle.name,
        detail=divergence.detail,
        repro=repro,
    )

    artifacts_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{oracle.name}-seed{base_seed}-{index}"
    module_path = artifacts_dir / f"{stem}.ir"
    module_path.write_text(text)
    failure.module_path = str(module_path)

    reduced_text = text
    if reduce:
        try:
            reduced_text = reduce_ir(
                text, lambda t: _oracle_verdict(oracle, t) is not None
            )
        except ReproError:
            reduced_text = text
        reduced_path = artifacts_dir / f"{stem}.reduced.ir"
        reduced_path.write_text(reduced_text)
        failure.reduced_path = str(reduced_path)
        failure.reduced_instructions = count_instructions(reduced_text)

    report_path = artifacts_dir / f"{stem}.txt"
    final = _oracle_verdict(oracle, reduced_text) or divergence
    report_path.write_text(
        f"{final.describe()}\n\nreplay: {repro}\n"
    )
    return failure
