"""repro — reproduction of *REFINE: Realistic Fault Injection via
Compiler-based Instrumentation for Accuracy, Portability and Speed*
(Georgakoudis, Laguna, Nikolopoulos & Schulz, SC'17).

The package is a full vertical stack:

* :mod:`repro.frontend` — MiniC, the C-like language the 14 benchmark
  workloads are written in;
* :mod:`repro.ir` / :mod:`repro.irpasses` — an SSA IR with O0/O1/O2
  optimization pipelines;
* :mod:`repro.backend` — instruction selection, linear-scan register
  allocation, frame lowering and peephole optimization for ``sx64``;
* :mod:`repro.machine` — a bit-accurate interpreter with architectural
  state (registers, FLAGS, memory, traps);
* :mod:`repro.fi` — the REFINE backend pass plus the LLFI (IR-level) and
  PINFI (binary-level) comparison tools;
* :mod:`repro.campaign`, :mod:`repro.stats`, :mod:`repro.reporting` —
  experiment orchestration, Leveugle sampling / chi-squared analysis and
  the paper's figures/tables;
* :mod:`repro.workloads` — the 14 HPC benchmark programs of Table 3.

Quick start::

    from repro import RefineTool, run_campaign
    from repro.workloads import get_workload

    spec = get_workload("HPCCG-1.0")
    tool = RefineTool(spec.source, spec.name)
    result = run_campaign(tool, n=100)
    print(result.summary())
"""

from repro.backend import compile_minic
from repro.campaign import (
    Outcome,
    classify,
    run_campaign,
    run_matrix,
)
from repro.fi import FIConfig, LLFITool, PinfiTool, RefineTool
from repro.machine import execute, load_binary

__version__ = "1.0.0"

__all__ = [
    "compile_minic",
    "Outcome",
    "classify",
    "run_campaign",
    "run_matrix",
    "FIConfig",
    "LLFITool",
    "PinfiTool",
    "RefineTool",
    "execute",
    "load_binary",
    "__version__",
]
